//! The 46 gate functions of Table 1.
//!
//! Each entry is the *pull-down network function* `f`: the PD network
//! conducts exactly when `f` evaluates to 1 (so the raw cell output is
//! `f'`; every cell also carries an output inverter, making both
//! polarities available — see Sec. 4.3 of the paper).

use cntfet_boolfn::{Expr, TruthTable};
use std::fmt;

/// Identifier of a gate in the paper's Table 1 (`F00` … `F45`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(u8);

impl GateId {
    /// Number of gates in the family.
    pub const COUNT: usize = 46;

    /// Creates a gate id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 46`.
    pub fn new(i: usize) -> GateId {
        assert!(i < Self::COUNT, "gate index out of range");
        GateId(i as u8)
    }

    /// All 46 gates in Table 1 order.
    pub fn all() -> impl Iterator<Item = GateId> {
        (0..Self::COUNT).map(GateId::new)
    }

    /// Index of the gate (0 for `F00`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The pull-down network function from Table 1.
    pub fn function(self) -> Expr {
        TABLE1[self.index()]
            .parse()
            .expect("Table 1 expressions are well-formed")
    }

    /// Expression text exactly as printed in the paper's Table 1.
    pub fn function_text(self) -> &'static str {
        TABLE1[self.index()]
    }

    /// Number of distinct signals the function reads.
    pub fn num_signals(self) -> usize {
        self.function().support_size()
    }

    /// Truth table over the gate's signal count.
    pub fn truth_table(self) -> TruthTable {
        let e = self.function();
        e.to_tt(e.max_var_excl().max(1))
    }

    /// True iff the gate exists in plain CMOS with the same topology —
    /// the 7 functions the paper identifies (F00, F02, F03, F10–F13).
    pub fn in_cmos_subset(self) -> bool {
        matches!(self.0, 0 | 2 | 3 | 10 | 11 | 12 | 13)
    }

    /// The 7 gates implementable in static CMOS under the same
    /// topology constraints.
    pub fn cmos_subset() -> impl Iterator<Item = GateId> {
        Self::all().filter(|g| g.in_cmos_subset())
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{:02}", self.0)
    }
}

/// Table 1 of the paper, verbatim.
const TABLE1: [&str; GateId::COUNT] = [
    /* F00 */ "A",
    /* F01 */ "A ⊕ B",
    /* F02 */ "A + B",
    /* F03 */ "A · B",
    /* F04 */ "(A ⊕ B) + C",
    /* F05 */ "(A ⊕ B) · C",
    /* F06 */ "(A ⊕ B) + (A ⊕ C)",
    /* F07 */ "(A ⊕ B) · (A ⊕ C)",
    /* F08 */ "(A ⊕ B) + (C ⊕ D)",
    /* F09 */ "(A ⊕ B) · (C ⊕ D)",
    /* F10 */ "A + B + C",
    /* F11 */ "(A + B) · C",
    /* F12 */ "A + (B · C)",
    /* F13 */ "A · B · C",
    /* F14 */ "(A ⊕ D) + B + C",
    /* F15 */ "(A ⊕ D) + (B ⊕ D) + C",
    /* F16 */ "(A ⊕ D) + (B ⊕ D) + (C ⊕ D)",
    /* F17 */ "((A ⊕ D) + B) · C",
    /* F18 */ "((A ⊕ D) + (B ⊕ D)) · C",
    /* F19 */ "((A ⊕ D) + B) · (C ⊕ D)",
    /* F20 */ "((A ⊕ D) + (B ⊕ D)) · (C ⊕ D)",
    /* F21 */ "(A + B) · (C ⊕ D)",
    /* F22 */ "(A ⊕ D) + (B · C)",
    /* F23 */ "A + (B ⊕ D) · C",
    /* F24 */ "(A ⊕ D) + (B ⊕ D) · C",
    /* F25 */ "A + (B ⊕ D) · (C ⊕ D)",
    /* F26 */ "(A ⊕ D) + ((B ⊕ D) · (C ⊕ D))",
    /* F27 */ "(A ⊕ D) · B · C",
    /* F28 */ "(A ⊕ D) · (B ⊕ D) · C",
    /* F29 */ "(A ⊕ D) · (B ⊕ D) · (C ⊕ D)",
    /* F30 */ "(A ⊕ D) + (B ⊕ E) + C",
    /* F31 */ "(A ⊕ D) + (B ⊕ D) + (C ⊕ E)",
    /* F32 */ "((A ⊕ D) + (B ⊕ E)) · C",
    /* F33 */ "((A ⊕ D) + B) · (C ⊕ E)",
    /* F34 */ "((A ⊕ D) + (B ⊕ D)) · (C ⊕ E)",
    /* F35 */ "((A ⊕ D) + (B ⊕ E)) · (C ⊕ D)",
    /* F36 */ "(A ⊕ D) + ((B ⊕ E) · C)",
    /* F37 */ "A + ((B ⊕ D) · (C ⊕ E))",
    /* F38 */ "(A ⊕ D) + ((B ⊕ E) · (C ⊕ E))",
    /* F39 */ "(A ⊕ D) + ((B ⊕ E) · (C ⊕ D))",
    /* F40 */ "(A ⊕ D) · (B ⊕ E) · C",
    /* F41 */ "(A ⊕ D) · (B ⊕ D) · (C ⊕ E)",
    /* F42 */ "(A ⊕ D) + (B ⊕ E) + (C ⊕ F)",
    /* F43 */ "((A ⊕ D) + (B ⊕ E)) · (C ⊕ F)",
    /* F44 */ "(A ⊕ D) + ((B ⊕ E) · (C ⊕ F))",
    /* F45 */ "(A ⊕ D) · (B ⊕ E) · (C ⊕ F)",
];

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_boolfn::npn_canonical;
    use std::collections::HashSet;

    #[test]
    fn all_46_parse_and_are_distinct_functions() {
        let mut seen = HashSet::new();
        for g in GateId::all() {
            let e = g.function();
            // Canonical key over 6 variables so different supports
            // remain comparable.
            let tt = e.to_tt(6);
            assert!(seen.insert(tt), "{g} duplicates another entry");
        }
        assert_eq!(seen.len(), 46);
    }

    #[test]
    fn cmos_subset_is_the_paper_seven() {
        let ids: Vec<String> = GateId::cmos_subset().map(|g| g.to_string()).collect();
        assert_eq!(ids, ["F00", "F02", "F03", "F10", "F11", "F12", "F13"]);
        // None of them contains an XOR.
        for g in GateId::cmos_subset() {
            assert!(!g.function_text().contains('⊕'));
        }
    }

    #[test]
    fn spot_check_semantics() {
        // F05 = (A⊕B)·C at A=1,B=0,C=1.
        let f05 = GateId::new(5).function();
        assert!(f05.eval(0b101));
        assert!(!f05.eval(0b111));
        // F16 = (A⊕D)+(B⊕D)+(C⊕D): all-equal inputs give 0.
        let f16 = GateId::new(16).function();
        assert!(!f16.eval(0b0000));
        assert!(!f16.eval(0b1111));
        assert!(f16.eval(0b0001));
    }

    #[test]
    fn signal_counts_match_paper_structure() {
        // F00 has 1 signal; F42/F45 use 6.
        assert_eq!(GateId::new(0).num_signals(), 1);
        assert_eq!(GateId::new(42).num_signals(), 6);
        assert_eq!(GateId::new(45).num_signals(), 6);
        for g in GateId::all() {
            assert!(g.num_signals() <= 6);
        }
    }

    #[test]
    fn gates_cover_24_npn_classes() {
        // The 46 gates are distinct as cells (NP-equivalence: input
        // renaming/complementation) but AND/OR duals share NPN classes
        // through output complementation — the family spans exactly 24
        // NPN classes of up to 6 variables.
        let mut classes = HashSet::new();
        for g in GateId::all() {
            let e = g.function();
            classes.insert(npn_canonical(&e.to_tt(6)).table);
        }
        assert_eq!(classes.len(), 24, "NPN class count changed");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_rejected() {
        let _ = GateId::new(46);
    }
}
