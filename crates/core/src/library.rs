//! Technology libraries for mapping: characterized cells with
//! functions, areas and pin delays, plus a genlib-style text export.

use crate::chars::{characterize, GateChar};
use crate::family::LogicFamily;
use crate::functions::GateId;
use cntfet_boolfn::{factor, isop, npn_canonical, NpnTransform, TruthTable};
use std::collections::HashMap;

/// A mappable library cell.
///
/// The stored `function` is the Table 1 pull-down function `f`; the
/// physical cell computes `f'` and, through its output inverter, `f`
/// as well — CNTFET cells therefore provide both output polarities,
/// while CMOS cells provide only `f'`.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell name (e.g. `F05`).
    pub name: String,
    /// Source gate.
    pub gate: GateId,
    /// Pull-down function over `num_inputs` variables.
    pub function: TruthTable,
    /// Number of input signals.
    pub num_inputs: usize,
    /// Normalized area used during mapping.
    pub area: f64,
    /// Per-pin FO4 delay (τ units) used during mapping.
    pub pin_delay: Vec<f64>,
    /// Per-pin input capacitance (unit-transistor widths).
    pub pin_cap: Vec<f64>,
    /// Output-node capacitance (parasitics, plus the output inverter
    /// for CNTFET cells).
    pub output_cap: f64,
    /// Average FO4 delay.
    pub delay_avg: f64,
}

impl Cell {
    /// Fastest input pin's FO4 delay (τ units) — the lower bound any
    /// signal through this cell pays. Arrival-aware cut ranking uses
    /// the per-pin delays directly; this is the summary for estimates
    /// and reporting.
    pub fn best_pin_delay(&self) -> f64 {
        self.pin_delay.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest input pin's FO4 delay (τ units) — the worst case a
    /// signal through this cell pays.
    pub fn worst_pin_delay(&self) -> f64 {
        self.pin_delay.iter().copied().fold(0.0, f64::max)
    }
}

/// A characterized technology library.
#[derive(Debug, Clone)]
pub struct Library {
    family: LogicFamily,
    cells: Vec<Cell>,
    inverter_area: f64,
    inverter_delay: f64,
    /// NPN matching index, built once per library: canonical truth
    /// table → every (cell, transform cell→canonical) in that class.
    npn_index: HashMap<TruthTable, Vec<(usize, NpnTransform)>>,
    /// Per input count `k`, bitmask of the normalized popcounts
    /// `min(ones, 2^k − ones)` the library's `k`-input cells realize —
    /// see [`Library::npn_popcount_feasible`].
    pc_classes: [u64; 7],
    /// NPN cofactor signatures of the library's cells — see
    /// [`Library::npn_cofactor_feasible`].
    cof_classes: std::collections::HashSet<u64>,
}

/// Packed NPN-invariant signature of a `k`-input function given as a
/// replicated word: the normalized ones-count plus the sorted
/// multiset of per-variable `min(c0, c1)` cofactor ones-counts,
/// minimized over output polarity. Input negation swaps one `(c0,c1)`
/// pair, permutation reorders the multiset, output negation
/// complements every count — all leave the key invariant, so equal
/// NPN classes have equal keys.
fn npn_cof_key(k: usize, word: u64) -> u64 {
    let shift = 6 - k;
    let pc = (word.count_ones() >> shift) as u64;
    let full = 1u64 << k;
    let half = full >> 1;
    let mut ms = [0u64; 6];
    for (v, m) in ms.iter_mut().enumerate().take(k) {
        let c1 = (word & cntfet_boolfn::word::var_word(v)).count_ones() as u64 >> shift;
        *m = c1.min(pc - c1);
    }
    ms[..k].sort_unstable();
    let pack = |pcn: u64, ms: &[u64; 6]| {
        let mut key = (k as u64) << 50 | pcn << 42;
        for (i, &m) in ms.iter().enumerate().take(k) {
            key |= m << (7 * i);
        }
        key
    };
    // The output-complemented function's multiset is the same list
    // shifted by `half − pc` element-wise (its min(c0,c1) is
    // `half − max(c0,c1)` and `c0 + c1 = pc`), so both polarities pack
    // without re-sorting; take the smaller key. `m + half ≥ pc` always
    // (`half ≥ max(c0,c1) = pc − m`), so the subtraction is safe.
    let mut ms_f = [0u64; 6];
    for (mf, &m) in ms_f.iter_mut().zip(&ms).take(k) {
        *mf = m + half - pc;
    }
    pack(pc, &ms).min(pack(full - pc, &ms_f))
}

fn build_npn_index(cells: &[Cell]) -> HashMap<TruthTable, Vec<(usize, NpnTransform)>> {
    let mut index: HashMap<TruthTable, Vec<(usize, NpnTransform)>> = HashMap::new();
    for (i, cell) in cells.iter().enumerate() {
        let canon = npn_canonical(&cell.function);
        index.entry(canon.table).or_default().push((i, canon.transform));
    }
    index
}

fn build_pc_classes(cells: &[Cell]) -> [u64; 7] {
    let mut pc = [0u64; 7];
    for cell in cells {
        let k = cell.num_inputs;
        let ones = cell.function.count_ones();
        pc[k] |= 1 << ones.min((1u64 << k) - ones);
    }
    pc
}

fn build_cof_classes(cells: &[Cell]) -> std::collections::HashSet<u64> {
    cells
        .iter()
        .map(|cell| npn_cof_key(cell.num_inputs, cell.function.words()[0]))
        .collect()
}

impl Library {
    /// Builds the library for a family.
    ///
    /// CNTFET cells carry their output inverter (area and delay
    /// overhead included) so both output polarities are free during
    /// mapping; the CMOS library prices inverters separately.
    pub fn new(family: LogicFamily) -> Library {
        let mut cells = Vec::new();
        for gate in GateId::all() {
            let Some(ch) = characterize(gate, family) else { continue };
            cells.push(Self::cell_from_char(&ch, family));
        }
        let inv = characterize(GateId::new(0), family).expect("inverter always exists");
        let (inverter_area, inverter_delay) = if family.is_cntfet() {
            // Both polarities already provided by every cell.
            (ch_area(&inv, family), inv.fo4_avg)
        } else {
            (inv.area, inv.fo4_avg)
        };
        let npn_index = build_npn_index(&cells);
        let pc_classes = build_pc_classes(&cells);
        let cof_classes = build_cof_classes(&cells);
        Library { family, cells, inverter_area, inverter_delay, npn_index, pc_classes, cof_classes }
    }

    fn cell_from_char(ch: &GateChar, family: LogicFamily) -> Cell {
        let expr = ch.gate.function();
        let k = expr.max_var_excl().max(1);
        let function = expr.to_tt(k);
        let with_inv = family.is_cntfet();
        let delay_overhead = if with_inv { family.mean_drive_resistance() } else { 0.0 };
        let pin_delay: Vec<f64> = (0..k as u8)
            .map(|v| ch.pin_fo4.get(&v).copied().unwrap_or(ch.fo4_avg) + delay_overhead)
            .collect();
        let pin_cap: Vec<f64> = (0..k as u8)
            .map(|v| ch.pin_cap.get(&v).copied().unwrap_or(0.0))
            .collect();
        // CNTFET cells carry their output inverter: its input gate cap
        // loads the internal node and its drains load the output.
        let output_cap = if with_inv {
            ch.output_cap + 2.0 * family.inverter_input_cap()
        } else {
            ch.output_cap
        };
        Cell {
            name: ch.gate.to_string(),
            gate: ch.gate,
            function,
            num_inputs: k,
            area: if with_inv { ch.area_with_inv } else { ch.area },
            pin_delay,
            pin_cap,
            output_cap,
            delay_avg: if with_inv { ch.fo4_avg_with_inv } else { ch.fo4_avg },
        }
    }

    /// The family this library implements.
    pub fn family(&self) -> LogicFamily {
        self.family
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Technology intrinsic delay τ in picoseconds.
    pub fn tau_ps(&self) -> f64 {
        self.family.tau_ps()
    }

    /// Area of an explicit inverter (used by CMOS mapping for
    /// polarity fixes; CNTFET cells never need one).
    pub fn inverter_area(&self) -> f64 {
        self.inverter_area
    }

    /// Delay of an explicit inverter in τ units.
    pub fn inverter_delay(&self) -> f64 {
        self.inverter_delay
    }

    /// True when cells provide both output polarities and accept both
    /// input polarities at no cost (ambipolar CNTFET libraries).
    pub fn free_polarity(&self) -> bool {
        self.family.is_cntfet()
    }

    /// Every `(cell index, transform cell→canonical)` whose function
    /// is NPN-equivalent to the given canonical table — a single hash
    /// lookup into the index precomputed at library construction.
    pub fn npn_matches(&self, canonical: &TruthTable) -> &[(usize, NpnTransform)] {
        self.npn_index.get(canonical).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct NPN classes across the library's cells.
    pub fn num_npn_classes(&self) -> usize {
        self.npn_index.len()
    }

    /// Constant-time necessary condition for NPN matching: input
    /// negations and permutations preserve a function's ones-count and
    /// output negation complements it, so `min(ones, 2^k − ones)` is
    /// an NPN-class invariant. A function of `nvars` inputs with
    /// `ones` minterms can match a cell only if some `nvars`-input
    /// cell shares the invariant. Boolean matchers check this before
    /// paying for canonicalization — the hot path of arrival-aware cut
    /// ranking, where most enumerated cut functions match nothing.
    pub fn npn_popcount_feasible(&self, nvars: usize, ones: u64) -> bool {
        nvars < self.pc_classes.len()
            && self.pc_classes[nvars] >> ones.min((1u64 << nvars) - ones) & 1 == 1
    }

    /// Stronger constant-time necessary condition for NPN matching
    /// than [`Library::npn_popcount_feasible`]: the sorted multiset of
    /// per-variable cofactor ones-counts (normalized over output
    /// polarity) is also an NPN-class invariant. `word` is the
    /// function's replicated single-word truth table over `nvars ≤ 6`
    /// inputs. False means *no* library cell can NPN-match the
    /// function; true means canonicalization must decide.
    pub fn npn_cofactor_feasible(&self, nvars: usize, word: u64) -> bool {
        self.cof_classes.contains(&npn_cof_key(nvars, word))
    }

    /// A copy of the library keeping only the cells accepted by
    /// `keep` — used e.g. to restrict mapping to the gates a regular
    /// fabric's generalized blocks can realize in a single block.
    ///
    /// # Panics
    ///
    /// Panics if the filter removes every cell.
    pub fn filtered(&self, keep: impl Fn(&Cell) -> bool) -> Library {
        let cells: Vec<Cell> = self.cells.iter().filter(|c| keep(c)).cloned().collect();
        assert!(!cells.is_empty(), "filter removed every cell");
        let npn_index = build_npn_index(&cells);
        let pc_classes = build_pc_classes(&cells);
        let cof_classes = build_cof_classes(&cells);
        Library {
            family: self.family,
            cells,
            inverter_area: self.inverter_area,
            inverter_delay: self.inverter_delay,
            npn_index,
            pc_classes,
            cof_classes,
        }
    }

    /// Exports the library in a genlib-flavoured text format (the
    /// interface the paper used with SIS/ABC-style mappers).
    pub fn to_genlib(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} library — tau = {} ps, {} cells\n",
            self.family,
            self.tau_ps(),
            self.cells.len()
        ));
        for c in &self.cells {
            // Output function f' in SOP form over pins A..F.
            let fprime = !&c.function;
            let sop = factor(&isop(&fprime));
            out.push_str(&format!(
                "GATE {:8} {:7.3} Y={};  # avg FO4 {:.2} tau\n",
                c.name,
                c.area,
                format!("{sop}").replace('·', "*").replace('⊕', "^").replace(" + ", "+"),
                c.delay_avg,
            ));
            for (i, d) in c.pin_delay.iter().enumerate() {
                out.push_str(&format!(
                    "  PIN {} NONINV 1 999 {:.3} 0.0 {:.3} 0.0\n",
                    (b'A' + i as u8) as char,
                    d,
                    d
                ));
            }
        }
        out
    }
}

fn ch_area(ch: &GateChar, family: LogicFamily) -> f64 {
    if family.is_cntfet() {
        ch.area_with_inv
    } else {
        ch.area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cntfet_static_library_has_46_cells() {
        let lib = Library::new(LogicFamily::TgStatic);
        assert_eq!(lib.cells().len(), 46);
        assert!(lib.free_polarity());
        assert_eq!(lib.tau_ps(), 0.59);
    }

    #[test]
    fn cmos_library_has_7_cells_and_priced_inverter() {
        let lib = Library::new(LogicFamily::CmosStatic);
        assert_eq!(lib.cells().len(), 7);
        assert!(!lib.free_polarity());
        assert!((lib.inverter_area() - 3.0).abs() < 1e-9);
        assert!((lib.inverter_delay() - 5.0).abs() < 1e-9);
        assert_eq!(lib.tau_ps(), 3.00);
    }

    #[test]
    fn cell_functions_and_pins_consistent() {
        let lib = Library::new(LogicFamily::TgStatic);
        for c in lib.cells() {
            assert_eq!(c.pin_delay.len(), c.num_inputs);
            assert_eq!(c.function.nvars(), c.num_inputs);
            assert!(c.area > 0.0);
            for &d in &c.pin_delay {
                assert!(d > 0.0);
                assert!(c.best_pin_delay() <= d && d <= c.worst_pin_delay());
            }
        }
        // F05 area includes the output inverter: 7 + 2 = 9.
        let f05 = lib.cells().iter().find(|c| c.name == "F05").unwrap();
        assert!((f05.area - 9.0).abs() < 1e-9);
    }

    #[test]
    fn npn_index_covers_every_cell() {
        let lib = Library::new(LogicFamily::TgStatic);
        assert!(lib.num_npn_classes() > 0);
        let mut indexed = 0;
        for (i, cell) in lib.cells().iter().enumerate() {
            let canon = npn_canonical(&cell.function);
            let entries = lib.npn_matches(&canon.table);
            assert!(entries.iter().any(|&(c, _)| c == i), "{} missing", cell.name);
            // Every stored transform maps its cell onto the canonical form.
            for &(c, t) in entries {
                assert_eq!(t.apply(&lib.cells()[c].function), canon.table);
            }
            indexed += 1;
        }
        assert_eq!(indexed, 46);
        // Filtering rebuilds the index for the surviving cells only.
        let two_input = lib.filtered(|c| c.num_inputs == 2);
        assert!(two_input.num_npn_classes() < lib.num_npn_classes());
    }

    #[test]
    fn npn_prefilters_accept_every_transformed_cell() {
        // The popcount and cofactor-signature pre-filters must be NPN
        // invariants: any transform of any cell function still passes
        // them, or matching would wrongly reject real matches.
        use cntfet_boolfn::NpnTransform;
        for family in [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            for cell in lib.cells() {
                let k = cell.num_inputs;
                let perms: Vec<Vec<usize>> = vec![
                    (0..k).collect(),
                    (0..k).rev().collect(),
                    (0..k).map(|i| (i + 1) % k).collect(),
                ];
                for perm in &perms {
                    for flips in [0u8, 0b1, 0b101, (1u8 << k) - 1] {
                        for out in [false, true] {
                            let t = NpnTransform::new(k, perm, flips, out);
                            let g = t.apply(&cell.function);
                            let w = g.words()[0];
                            assert!(
                                lib.npn_popcount_feasible(k, g.count_ones()),
                                "{family:?}/{}: popcount filter rejected a transform",
                                cell.name
                            );
                            assert!(
                                lib.npn_cofactor_feasible(k, w),
                                "{family:?}/{}: cofactor filter rejected a transform",
                                cell.name
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn genlib_export_mentions_every_cell() {
        let lib = Library::new(LogicFamily::TgPseudo);
        let g = lib.to_genlib();
        for c in lib.cells() {
            assert!(g.contains(&c.name), "genlib missing {}", c.name);
        }
        assert!(g.contains("PIN A"));
    }
}
