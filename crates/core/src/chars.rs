//! Library characterization (the engine behind the paper's Table 2):
//! transistor count, normalized area and FO4 delay for every gate in
//! every family.
//!
//! # Delay model
//!
//! The paper uses the switch-level RC / logical-effort model of
//! Weste–Harris: `FO4 = p + 4g` in units of the technology intrinsic
//! delay τ (= R·C_inv, the delay of a parasitic-free FO1 inverter).
//! Expressed per input pin `i`:
//!
//! ```text
//! FO4(i) = R̄ · (C_out + 4·C_pin(i)) / C_inv
//! ```
//!
//! * `C_pin(i)` — gate capacitance the pin presents (Σ device widths
//!   it drives; regular and polarity gates weigh equally, Sec. 4.3);
//! * `C_out` — parasitic drain capacitance at the output node
//!   (terminal caps of output-adjacent elements; internal stack nodes
//!   are neglected, as in the paper);
//! * `R̄` — mean drive resistance: 1 for static families (sized to
//!   unit resistance both directions), 2 for pseudo families (rise
//!   through the 3R weak pull-up, fall at effectively R, averaged);
//! * `C_inv` — unit-inverter input capacitance (2 CNTFET, 3 CMOS).
//!
//! Worst-case FO4 maximizes over pins, average FO4 takes the mean over
//! distinct signals — both as reported in Table 2.

use crate::family::LogicFamily;
use crate::functions::GateId;
use crate::network::{Network, NetworkSide, SizedNetwork};
use std::collections::BTreeMap;

/// Characterization record for one gate in one family
/// (one cell of the paper's Table 2).
#[derive(Debug, Clone)]
pub struct GateChar {
    /// Which gate.
    pub gate: GateId,
    /// Which family.
    pub family: LogicFamily,
    /// Transistor count (T column).
    pub transistors: usize,
    /// Normalized area Σ W/L (A column).
    pub area: f64,
    /// Worst-case FO4 delay in τ units.
    pub fo4_worst: f64,
    /// Average FO4 delay in τ units.
    pub fo4_avg: f64,
    /// Per-signal FO4 delays (indexed by variable), for mapping.
    pub pin_fo4: BTreeMap<u8, f64>,
    /// Per-signal input capacitance (gate + polarity-gate widths the
    /// pin drives), for energy estimation.
    pub pin_cap: BTreeMap<u8, f64>,
    /// Output-node parasitic capacitance.
    pub output_cap: f64,
    /// Transistors including the output inverter.
    pub transistors_with_inv: usize,
    /// Area including the output inverter.
    pub area_with_inv: f64,
    /// Average FO4 including the output-inverter load.
    pub fo4_avg_with_inv: f64,
}

/// Characterizes a gate in a family.
///
/// Returns `None` when the family cannot implement the gate (CMOS and
/// any XOR-containing function).
pub fn characterize(gate: GateId, family: LogicFamily) -> Option<GateChar> {
    if family == LogicFamily::CmosStatic && !gate.in_cmos_subset() {
        return None;
    }
    let expr = gate.function();
    let net = Network::from_expr(&expr).expect("Table 1 gates are series/parallel");

    // Pull-down, sized to R (static) or 3R/4 (pseudo widens by 4/3).
    let pd_target = 1.0 / family.pd_width_factor();
    let pd = SizedNetwork::size(&net, pd_target, family, NetworkSide::PullDown);

    // Pull-up.
    let pu = match family {
        LogicFamily::TgPseudo | LogicFamily::PassPseudo => None,
        _ => Some(SizedNetwork::size(
            &net.dual(),
            1.0,
            family,
            NetworkSide::PullUp,
        )),
    };

    let mut transistors = pd.transistor_count();
    let mut area = pd.area();
    let mut c_out = pd.output_adjacent_cap();
    let mut pins: BTreeMap<u8, f64> = BTreeMap::new();
    pd.accumulate_pin_caps(&mut pins);

    match &pu {
        Some(pu_net) => {
            transistors += pu_net.transistor_count();
            area += pu_net.area();
            c_out += pu_net.output_adjacent_cap();
            pu_net.accumulate_pin_caps(&mut pins);
        }
        None => {
            // Weak always-on pull-up, 4× weaker than the pull-down
            // (W = 1/3 ⇒ R_pu = 3R vs R_pd = 3R/4).
            transistors += 1;
            area += 1.0 / 3.0;
            c_out += 1.0 / 3.0;
        }
    }

    // Pass-transistor *static* needs a restoration inverter to regain
    // full swing (Sec. 3.2); its input loads the network output.
    let restoration_inv = family == LogicFamily::PassStatic;
    if restoration_inv {
        transistors += 2;
        area += 2.0;
        c_out += family.inverter_input_cap();
    }

    let c_inv = family.inverter_input_cap();
    let rbar = family.mean_drive_resistance();
    let inv_stage = if restoration_inv { 5.0 } else { 0.0 }; // FO4 of the restoring inverter

    let pin_fo4: BTreeMap<u8, f64> = pins
        .iter()
        .map(|(&v, &c)| (v, rbar * (c_out + 4.0 * c) / c_inv + inv_stage))
        .collect();
    let fo4_worst = pin_fo4.values().fold(0.0f64, |a, &b| a.max(b));
    let fo4_avg = pin_fo4.values().sum::<f64>() / pin_fo4.len() as f64;

    // Output inverter that gives every cell both polarities
    // (Sec. 4.3): adds its transistors/area, and its input cap loads
    // the gate output.
    let transistors_with_inv = transistors + 2;
    let area_with_inv = area + family.output_inverter_area();
    let fo4_avg_with_inv = fo4_avg + rbar * family.inverter_input_cap() / c_inv;

    Some(GateChar {
        gate,
        family,
        transistors,
        area,
        fo4_worst,
        fo4_avg,
        pin_fo4,
        pin_cap: pins,
        output_cap: c_out,
        transistors_with_inv,
        area_with_inv,
        fo4_avg_with_inv,
    })
}

/// Characterizes every gate the family supports, in Table 1 order.
pub fn characterize_family(family: LogicFamily) -> Vec<GateChar> {
    GateId::all().filter_map(|g| characterize(g, family)).collect()
}

/// Family-average figures (the "Av." rows of Table 2).
#[derive(Debug, Clone, Copy)]
pub struct FamilyAverages {
    /// Mean transistor count.
    pub transistors: f64,
    /// Mean normalized area.
    pub area: f64,
    /// Mean worst-case FO4.
    pub fo4_worst: f64,
    /// Mean average FO4.
    pub fo4_avg: f64,
    /// Mean transistor count with output inverters.
    pub transistors_with_inv: f64,
    /// Mean area with output inverters.
    pub area_with_inv: f64,
    /// Mean average FO4 with output inverters.
    pub fo4_avg_with_inv: f64,
}

/// Averages a characterized family.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn family_averages(chars: &[GateChar]) -> FamilyAverages {
    assert!(!chars.is_empty(), "no characterized gates");
    let n = chars.len() as f64;
    FamilyAverages {
        transistors: chars.iter().map(|c| c.transistors as f64).sum::<f64>() / n,
        area: chars.iter().map(|c| c.area).sum::<f64>() / n,
        fo4_worst: chars.iter().map(|c| c.fo4_worst).sum::<f64>() / n,
        fo4_avg: chars.iter().map(|c| c.fo4_avg).sum::<f64>() / n,
        transistors_with_inv: chars.iter().map(|c| c.transistors_with_inv as f64).sum::<f64>() / n,
        area_with_inv: chars.iter().map(|c| c.area_with_inv).sum::<f64>() / n,
        fo4_avg_with_inv: chars.iter().map(|c| c.fo4_avg_with_inv).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(g: usize, f: LogicFamily) -> GateChar {
        characterize(GateId::new(g), f).unwrap()
    }

    #[track_caller]
    fn close(actual: f64, expected: f64, tol: f64, what: &str) {
        assert!(
            (actual - expected).abs() <= tol,
            "{what}: got {actual:.3}, paper says {expected:.3}"
        );
    }

    /// Exact reproductions of Table 2, CNTFET TG static column.
    #[test]
    fn table2_tg_static_exact_rows() {
        // (gate, T, A, FO4 worst, FO4 avg)
        let rows = [
            (0, 2, 2.0, 5.0, 5.0),
            (1, 4, 8.0 / 3.0, 4.0, 4.0),
            (2, 4, 6.0, 8.0, 8.0),
            (3, 4, 6.0, 8.0, 8.0),
            (8, 8, 8.0, 20.0 / 3.0, 20.0 / 3.0),
            (10, 6, 12.0, 11.0, 11.0),
            (13, 6, 12.0, 11.0, 11.0),
            (16, 12, 16.0, 20.0, 12.0),
            (42, 12, 16.0, 28.0 / 3.0, 28.0 / 3.0),
        ];
        for (g, t, a, w, avg) in rows {
            let c = get(g, LogicFamily::TgStatic);
            assert_eq!(c.transistors, t, "F{g:02} T");
            close(c.area, a, 1e-9, &format!("F{g:02} area"));
            close(c.fo4_worst, w, 1e-9, &format!("F{g:02} worst"));
            close(c.fo4_avg, avg, 1e-9, &format!("F{g:02} avg"));
        }
    }

    /// Rows where the paper rounds or differs by ordering detail:
    /// match within a small tolerance.
    #[test]
    fn table2_tg_static_tolerance_rows() {
        let rows = [
            // (gate, T, A, worst, avg, tolW, tolA)
            (5, 6, 7.0, 8.2, 6.6, 0.1, 0.3),
            (4, 6, 7.0, 8.2, 6.6, 0.1, 0.3),
            (6, 8, 8.0, 10.7, 8.0, 0.1, 0.1),
            (7, 8, 8.0, 10.7, 8.0, 0.1, 0.1),
            (11, 6, 11.0, 10.5, 9.8, 0.1, 0.1),
            (12, 6, 11.0, 10.5, 9.8, 0.1, 0.1),
            (24, 10, 13.3, 12.3, 9.5, 0.1, 0.3),
        ];
        for (g, t, a, w, avg, tw, ta) in rows {
            let c = get(g, LogicFamily::TgStatic);
            assert_eq!(c.transistors, t, "F{g:02} T");
            close(c.area, a, 0.05, &format!("F{g:02} area"));
            close(c.fo4_worst, w, tw, &format!("F{g:02} worst"));
            close(c.fo4_avg, avg, ta, &format!("F{g:02} avg"));
        }
    }

    #[test]
    fn table2_cmos_rows() {
        // CMOS static column of Table 2.
        let rows = [
            (2, 4, 10.0, 26.0 / 3.0, 26.0 / 3.0), // NOR2 8.7
            (3, 4, 8.0, 22.0 / 3.0, 22.0 / 3.0),  // NAND2 7.3
            (10, 6, 21.0, 37.0 / 3.0, 37.0 / 3.0), // NOR3 12.3
            (13, 6, 15.0, 29.0 / 3.0, 29.0 / 3.0), // NAND3 9.7
            (11, 6, 16.0, 10.5, 59.0 / 6.0),      // OAI21 10.5 / 9.8
            (12, 6, 17.0, 10.5, 59.0 / 6.0),      // AOI21 (paper: 10.3/9.9)
        ];
        for (g, t, a, w, avg) in rows {
            let c = get(g, LogicFamily::CmosStatic);
            assert_eq!(c.transistors, t, "F{g:02} T");
            close(c.area, a, 1e-9, &format!("F{g:02} area"));
            close(c.fo4_worst, w, 0.21, &format!("F{g:02} worst"));
            close(c.fo4_avg, avg, 0.1, &format!("F{g:02} avg"));
        }
        // Inverter: the computed area is 3 (Wp=2 + Wn=1); the paper
        // prints 2 — a known internal inconsistency we document in
        // EXPERIMENTS.md. Delay matches exactly.
        let inv = get(0, LogicFamily::CmosStatic);
        close(inv.area, 3.0, 1e-9, "CMOS inverter area (computed)");
        close(inv.fo4_worst, 5.0, 1e-9, "CMOS inverter FO4");
    }

    #[test]
    fn table2_tg_pseudo_rows() {
        let rows = [
            (0, 2, 5.0 / 3.0, 7.0, 7.0),
            (1, 3, 19.0 / 9.0, 17.0 / 3.0, 17.0 / 3.0),
            (2, 3, 3.0, 25.0 / 3.0, 25.0 / 3.0),
            (3, 3, 17.0 / 3.0, 41.0 / 3.0, 41.0 / 3.0),
            (16, 7, 17.0 / 3.0, 49.0 / 3.0, 11.0),
        ];
        for (g, t, a, w, avg) in rows {
            let c = get(g, LogicFamily::TgPseudo);
            assert_eq!(c.transistors, t, "F{g:02} T");
            close(c.area, a, 1e-9, &format!("F{g:02} area"));
            close(c.fo4_worst, w, 1e-9, &format!("F{g:02} worst"));
            close(c.fo4_avg, avg, 1e-9, &format!("F{g:02} avg"));
        }
    }

    #[test]
    fn table2_pass_pseudo_rows() {
        let rows = [
            (0, 2, 5.0 / 3.0, 7.0),
            (1, 2, 3.0, 41.0 / 3.0),
            (2, 3, 3.0, 25.0 / 3.0),
            (3, 3, 17.0 / 3.0, 41.0 / 3.0),
        ];
        for (g, t, a, w) in rows {
            let c = get(g, LogicFamily::PassPseudo);
            assert_eq!(c.transistors, t, "F{g:02} T");
            close(c.area, a, 1e-9, &format!("F{g:02} area"));
            close(c.fo4_worst, w, 1e-9, &format!("F{g:02} worst"));
        }
        // Fewer transistors than TG pseudo on XOR-bearing gates.
        let tg = get(9, LogicFamily::TgPseudo);
        let pass = get(9, LogicFamily::PassPseudo);
        assert!(pass.transistors < tg.transistors);
    }

    #[test]
    fn with_inverter_overheads() {
        let c = get(5, LogicFamily::TgStatic);
        assert_eq!(c.transistors_with_inv, c.transistors + 2);
        close(c.area_with_inv, c.area + 2.0, 1e-12, "static inv area");
        close(c.fo4_avg_with_inv, c.fo4_avg + 1.0, 1e-12, "static inv delay");
        let p = get(5, LogicFamily::TgPseudo);
        close(p.area_with_inv, p.area + 5.0 / 3.0, 1e-12, "pseudo inv area");
        close(p.fo4_avg_with_inv, p.fo4_avg + 2.0, 1e-12, "pseudo inv delay");
    }

    #[test]
    fn family_averages_reproduce_table2_footer() {
        // Paper: TG static averages T 9.1, A 12.3, FO4(a) 9.0.
        let avg = family_averages(&characterize_family(LogicFamily::TgStatic));
        close(avg.transistors, 9.1, 0.2, "TG static mean T");
        close(avg.area, 12.3, 0.6, "TG static mean area");
        close(avg.fo4_avg, 9.0, 0.6, "TG static mean FO4(a)");
        // Pseudo is ~31% smaller and ~33% slower (Sec. 4.3).
        let ps = family_averages(&characterize_family(LogicFamily::TgPseudo));
        let area_ratio = ps.area / avg.area;
        close(area_ratio, 0.69, 0.06, "pseudo/static area ratio");
        assert!(ps.fo4_avg > avg.fo4_avg, "pseudo must be slower");
        // CMOS supports only 7 gates.
        let cmos = characterize_family(LogicFamily::CmosStatic);
        assert_eq!(cmos.len(), 7);
        let cm = family_averages(&cmos);
        close(cm.fo4_avg, 9.0, 1.0, "CMOS mean FO4(a)");
    }

    #[test]
    fn cmos_skips_xor_gates() {
        assert!(characterize(GateId::new(1), LogicFamily::CmosStatic).is_none());
        assert!(characterize(GateId::new(5), LogicFamily::CmosStatic).is_none());
        assert!(characterize(GateId::new(12), LogicFamily::CmosStatic).is_some());
    }

    #[test]
    fn every_family_characterizes_all_supported_gates() {
        assert_eq!(characterize_family(LogicFamily::TgStatic).len(), 46);
        assert_eq!(characterize_family(LogicFamily::TgPseudo).len(), 46);
        assert_eq!(characterize_family(LogicFamily::PassPseudo).len(), 46);
        assert_eq!(characterize_family(LogicFamily::PassStatic).len(), 46);
        assert_eq!(characterize_family(LogicFamily::CmosStatic).len(), 7);
    }
}
