//! The ambipolar-CNTFET logic-gate library of Ben Jamaa, Mohanram and
//! De Micheli (DATE 2009) — the paper's primary contribution,
//! implemented as a characterizable, mappable, switch-level-verifiable
//! cell family.
//!
//! Ambipolar Schottky-barrier CNTFETs carry a second gate (the
//! *polarity gate*) that electrically selects p- or n-type behaviour.
//! Pairing two such devices into a transmission gate yields a circuit
//! element that conducts exactly when `gate ⊕ control` — an XOR for
//! the price of a pass gate. Series/parallel networks of these
//! elements realize the 46 generalized NOR/NAND/AOI/OAI functions of
//! the paper's Table 1, against 7 for CMOS with the same topology.
//!
//! What lives here:
//!
//! * [`GateId`] — the 46 functions of Table 1 ([`functions`]);
//! * [`Network`]/[`SizedNetwork`] — series/parallel pull networks,
//!   dual-network derivation and the unit-drive sizing rules
//!   ([`network`]);
//! * [`characterize`] — transistor count, normalized area, worst and
//!   average FO4 delay for the four families of Table 2 ([`chars`]);
//! * [`enumerate_gates`] — the topology enumeration behind the
//!   "46 vs 7" claim ([`enumerate`]);
//! * [`gate_netlist`] — transistor netlists for switch-level
//!   verification ([`to_netlist`]);
//! * [`Library`]/[`Cell`] — mapping-ready libraries with genlib
//!   export ([`library`]);
//! * [`DynamicGnor`] — the prior-art dynamic gate of Fig. 2 whose
//!   degraded output motivates the static family ([`gnor`]).
//!
//! # Examples
//!
//! ```
//! use cntfet_core::{characterize, GateId, LogicFamily};
//!
//! // F05 = (A⊕B)·C in the static transmission-gate family:
//! // 6 transistors, area 7, worst FO4 ≈ 8.2τ (paper Table 2).
//! let c = characterize(GateId::new(5), LogicFamily::TgStatic).unwrap();
//! assert_eq!(c.transistors, 6);
//! assert!((c.area - 7.0).abs() < 1e-9);
//! assert!((c.fo4_worst - 8.17).abs() < 0.1);
//! ```
//!
//! A [`Library`] is the mapping-facing view of a family: 46 CNTFET
//! cells vs 7 for CMOS, an NPN index built at construction, and the
//! per-pin delays arrival-aware cut ranking consumes:
//!
//! ```
//! use cntfet_core::{Library, LogicFamily};
//!
//! let tg = Library::new(LogicFamily::TgStatic);
//! assert_eq!(tg.cells().len(), 46);
//! assert!(tg.free_polarity()); // both output polarities are free
//! for cell in tg.cells() {
//!     assert!(cell.best_pin_delay() <= cell.worst_pin_delay());
//! }
//! let cmos = Library::new(LogicFamily::CmosStatic);
//! assert_eq!(cmos.cells().len(), 7);
//! assert!(cmos.inverter_delay() > 0.0); // CMOS pays explicit inverters
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chars;
pub mod enumerate;
pub mod family;
pub mod functions;
pub mod gnor;
pub mod library;
pub mod network;
pub mod to_netlist;

pub use chars::{characterize, characterize_family, family_averages, FamilyAverages, GateChar};
pub use enumerate::{enumerate_gates, np_canonical, EnumerationResult};
pub use family::LogicFamily;
pub use functions::GateId;
pub use gnor::DynamicGnor;
pub use library::{Cell, Library};
pub use network::{
    element_style, ElemKind, ElementStyle, Network, NetworkError, NetworkSide, SizedElement,
    SizedNetwork,
};
pub use to_netlist::{gate_netlist, GateNetlist};
