//! Reconstruction of a mapped netlist as an AIG and SAT-based
//! verification against the source network.

use crate::mapper::{Mapping, PoBinding, Source};
use cntfet_aig::{
    check_equivalence_report, check_equivalence_sweeping_report, Aig, CecReport, CecResult, Lit,
    SweepOptions,
};
use cntfet_core::Library;
use std::collections::HashMap;

/// Rebuilds the logic of a mapped netlist as an AIG with the same
/// PI/PO interface as the source.
pub fn mapping_to_aig(mapping: &Mapping, library: &Library, num_pis: usize) -> Aig {
    let mut g = Aig::new("mapped");
    let pis = g.add_pis(num_pis);
    let mut value: HashMap<u32, Lit> = HashMap::new();

    let src_lit = |src: Source, compl: bool, value: &HashMap<u32, Lit>, pis: &[Lit]| -> Lit {
        let base = match src {
            Source::Pi(i) => pis[i],
            Source::Node(n) => *value.get(&(n.index() as u32)).expect("gate emitted before use"),
        };
        base.negate_if(compl)
    };

    for gate in &mapping.gates {
        let cell = &library.cells()[gate.cell];
        let expr = cell.gate.function();
        let leaves: Vec<Lit> = gate
            .pins
            .iter()
            .map(|&(src, compl)| src_lit(src, compl, &value, &pis))
            .collect();
        let lit = g.build_expr(&expr, &leaves).negate_if(gate.out_compl);
        value.insert(gate.root.index() as u32, lit);
    }

    for po in &mapping.pos {
        let lit = match *po {
            PoBinding::Const(compl) => Lit::FALSE.negate_if(compl),
            PoBinding::Signal(src, compl) => src_lit(src, compl, &value, &pis),
        };
        g.add_po(lit);
    }
    g
}

/// Checks that a mapping implements exactly the source AIG.
///
/// Small networks go through the plain miter
/// ([`cntfet_aig::check_equivalence`]); larger ones — where a
/// monolithic miter would choke on arithmetic structure — use SAT
/// sweeping ([`cntfet_aig::check_equivalence_sweeping`]), which
/// exploits the structural similarity between a netlist and its
/// mapping.
pub fn verify_mapping(source: &Aig, mapping: &Mapping, library: &Library) -> CecResult {
    verify_mapping_report(source, mapping, library).result
}

/// [`verify_mapping`] returning the full [`CecReport`], so callers
/// (repro binaries, benches) can track what the verification engine
/// cost — solver conflicts/propagations, internal sweeping proofs,
/// whether exhaustive simulation short-circuited the check.
pub fn verify_mapping_report(source: &Aig, mapping: &Mapping, library: &Library) -> CecReport {
    let rebuilt = mapping_to_aig(mapping, library, source.num_pis());
    if source.num_ands() + rebuilt.num_ands() > 2_000 {
        check_equivalence_sweeping_report(source, &rebuilt, &SweepOptions::default())
    } else {
        check_equivalence_report(source, &rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use cntfet_core::LogicFamily;

    fn full_adder_chain(bits: usize) -> Aig {
        let mut g = Aig::new("adder");
        let a = g.add_pis(bits);
        let b = g.add_pis(bits);
        let mut carry = Lit::FALSE;
        for i in 0..bits {
            let x = g.xor(a[i], b[i]);
            let s = g.xor(x, carry);
            g.add_po(s);
            let c1 = g.and(a[i], b[i]);
            let c2 = g.and(x, carry);
            carry = g.or(c1, c2);
        }
        g.add_po(carry);
        g
    }

    #[test]
    fn mapped_adder_equivalent_all_families() {
        let src = full_adder_chain(6);
        for family in [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            let m = map(&src, &lib, MapOptions::default());
            assert_eq!(
                verify_mapping(&src, &m, &lib),
                CecResult::Equivalent,
                "{family:?} mapping broke the adder"
            );
            assert!(m.stats.gates > 0);
            assert!(m.stats.area > 0.0);
            assert!(m.stats.delay_norm > 0.0);
        }
    }

    #[test]
    fn cntfet_maps_xor_in_one_gate() {
        let mut g = Aig::new("xor2");
        let p = g.add_pis(2);
        let x = g.xor(p[0], p[1]);
        g.add_po(x);
        let lib = Library::new(LogicFamily::TgStatic);
        let m = map(&g, &lib, MapOptions::default());
        assert_eq!(m.stats.gates, 1, "XOR must map to a single F01 cell");
        assert_eq!(lib.cells()[m.gates[0].cell].name, "F01");
        assert_eq!(verify_mapping(&g, &m, &lib), CecResult::Equivalent);
    }

    #[test]
    fn cmos_needs_more_gates_for_xor() {
        let mut g = Aig::new("xor2");
        let p = g.add_pis(2);
        let x = g.xor(p[0], p[1]);
        g.add_po(x);
        let lib = Library::new(LogicFamily::CmosStatic);
        let m = map(&g, &lib, MapOptions::default());
        assert!(m.stats.gates >= 3, "CMOS XOR takes several NAND/NOR/INV");
        assert_eq!(verify_mapping(&g, &m, &lib), CecResult::Equivalent);
    }

    #[test]
    fn po_polarities_and_constants() {
        let mut g = Aig::new("polarity");
        let p = g.add_pis(2);
        let x = g.and(p[0], p[1]);
        g.add_po(x.negate()); // NAND output
        g.add_po(Lit::TRUE);
        g.add_po(p[0]); // PI passthrough
        g.add_po(p[1].negate()); // complemented PI
        for family in [LogicFamily::TgStatic, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            let m = map(&g, &lib, MapOptions::default());
            assert_eq!(
                verify_mapping(&g, &m, &lib),
                CecResult::Equivalent,
                "{family:?}"
            );
        }
    }

    #[test]
    fn area_recovery_does_not_break_function() {
        let src = full_adder_chain(8);
        let lib = Library::new(LogicFamily::TgStatic);
        let fast = map(&src, &lib, MapOptions { area_rounds: 0, ..Default::default() });
        let tight = map(&src, &lib, MapOptions { area_rounds: 3, ..Default::default() });
        assert_eq!(verify_mapping(&src, &tight, &lib), CecResult::Equivalent);
        assert!(tight.stats.area <= fast.stats.area + 1e-9);
        assert!(tight.stats.delay_norm >= fast.stats.delay_norm - 1e-9);
    }
}
