//! Structural validation of a technology-mapped cover against the AIG
//! it was extracted from and the library it instantiates.
//!
//! [`check_mapping`] is the mapped-netlist member of the workspace's
//! invariant-checker family ([`cntfet_aig::Aig::check`],
//! `cntfet_sat::Solver::check`): it validates the *cover structure* —
//! gate roots live and unique, pins resolving to primary inputs or
//! earlier-emitted gates (topological emission), cell indices and pin
//! arities matching the library — and re-derives the timing/area
//! summary from per-pin delays, catching a mapper whose bookkeeping
//! drifted from the netlist it actually emitted. Functional
//! correctness is [`crate::verify_mapping`]'s job; this check is the
//! cheap structural complement that runs under `--features paranoid`
//! after every mapping round.

use crate::mapper::{Mapping, PoBinding, Source};
use cntfet_aig::Aig;
use cntfet_core::Library;
use std::collections::HashMap;
use std::fmt;

/// Tolerance of the floating-point consistency checks (matches the
/// mapper's own comparison epsilon, scaled for accumulated sums).
const EPS: f64 = 1e-6;

/// A violated mapped-cover invariant (see [`check_mapping`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapCheckError {
    /// A gate's root is not a live AND node of the AIG.
    RootNotLive {
        /// The offending root node index.
        root: u32,
    },
    /// Two gates implement the same root node.
    RootDuplicated {
        /// The doubly-implemented root.
        root: u32,
    },
    /// A gate references a cell index outside the library.
    CellOutOfRange {
        /// The gate's root.
        root: u32,
        /// The out-of-range cell index.
        cell: usize,
    },
    /// A gate's pin count disagrees with its cell's input count.
    PinArity {
        /// The gate's root.
        root: u32,
        /// Pins on the gate.
        pins: usize,
        /// Inputs of the cell.
        inputs: usize,
    },
    /// A pin references an out-of-range PI or a node not emitted
    /// earlier in the cover (dangling or order-violating edge).
    PinSourceInvalid {
        /// Position of the gate in the emission order.
        gate: u32,
    },
    /// The mapping does not bind every AIG primary output.
    PoCount {
        /// AIG output count.
        expected: usize,
        /// Bindings present.
        actual: usize,
    },
    /// A primary-output binding references an uncovered source.
    PoSourceInvalid {
        /// Index of the output.
        po: usize,
    },
    /// A free-polarity mapping claims explicit inverters.
    InverterCount {
        /// The claimed inverter count.
        inverters: usize,
    },
    /// `stats.gates` disagrees with the gate list + inverters.
    GateCount {
        /// Stored count.
        stored: usize,
        /// Count recomputed from the netlist.
        actual: usize,
    },
    /// `stats.area` disagrees with the cell-area sum.
    AreaMismatch {
        /// Stored area.
        stored: f64,
        /// Area recomputed from the netlist.
        actual: f64,
    },
    /// `stats.delay_ps` is not `delay_norm` scaled by the library τ.
    DelayScale {
        /// The inconsistent picosecond value.
        delay_ps: f64,
    },
    /// Arrivals re-derived from per-pin delays contradict
    /// `stats.delay_norm` (exact for free polarity, lower bound for
    /// CMOS).
    ArrivalMismatch {
        /// Stored critical-path delay (τ units).
        stored: f64,
        /// Re-derived value.
        derived: f64,
    },
}

impl fmt::Display for MapCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MapCheckError::RootNotLive { root } => {
                write!(f, "gate root {root} is not a live AND node")
            }
            MapCheckError::RootDuplicated { root } => {
                write!(f, "root {root} implemented twice")
            }
            MapCheckError::CellOutOfRange { root, cell } => {
                write!(f, "gate at root {root}: cell index {cell} out of range")
            }
            MapCheckError::PinArity { root, pins, inputs } => {
                write!(f, "gate at root {root}: {pins} pins on a {inputs}-input cell")
            }
            MapCheckError::PinSourceInvalid { gate } => {
                write!(f, "gate #{gate}: pin source dangling or out of order")
            }
            MapCheckError::PoCount { expected, actual } => {
                write!(f, "{actual} output bindings for {expected} outputs")
            }
            MapCheckError::PoSourceInvalid { po } => {
                write!(f, "output {po}: source not covered by the mapping")
            }
            MapCheckError::InverterCount { inverters } => {
                write!(f, "free-polarity mapping claims {inverters} inverters")
            }
            MapCheckError::GateCount { stored, actual } => {
                write!(f, "gate count: {stored} stored, {actual} actual")
            }
            MapCheckError::AreaMismatch { stored, actual } => {
                write!(f, "area: {stored} stored, {actual} recomputed")
            }
            MapCheckError::DelayScale { delay_ps } => {
                write!(f, "delay_ps {delay_ps} is not delay_norm · τ")
            }
            MapCheckError::ArrivalMismatch { stored, derived } => {
                write!(f, "critical path: {stored} stored, {derived} re-derived")
            }
        }
    }
}

impl std::error::Error for MapCheckError {}

/// Validates the structure and summary statistics of a mapped cover.
///
/// Checked invariants, in order:
/// - every gate's root is a live AND node of `aig`, emitted at most
///   once, with a valid library cell index and one pin per cell input;
/// - every pin and PO source resolves to an in-range primary input or
///   to a gate emitted *earlier* (the cover is topological and fully
///   covered — no dangling internal signal);
/// - `stats.gates`/`stats.inverters` agree with the gate list and the
///   library's polarity model (free-polarity families use none);
/// - `stats.area` equals the cell-area sum plus inverter area;
/// - `stats.delay_ps` is `stats.delay_norm` scaled by the library τ;
/// - arrivals re-derived from per-pin delays reproduce
///   `stats.delay_norm`: exactly (within epsilon) for free-polarity
///   libraries, and as a lower bound for CMOS, whose inverter
///   placement depends on phase state the [`Mapping`] does not carry.
///
/// Returns the first violation as a named [`MapCheckError`].
pub fn check_mapping(
    aig: &Aig,
    mapping: &Mapping,
    library: &Library,
) -> Result<(), MapCheckError> {
    let cells = library.cells();
    let free_pol = library.free_polarity();

    // Gate list: roots, cells, arities, topological pin resolution,
    // and the per-pin-delay arrival recomputation in one pass.
    let mut arr: HashMap<u32, f64> = HashMap::new();
    let mut area = 0.0f64;
    for (pos, g) in mapping.gates.iter().enumerate() {
        let root = g.root.index() as u32;
        if !aig.is_and(g.root) {
            return Err(MapCheckError::RootNotLive { root });
        }
        if arr.contains_key(&root) {
            return Err(MapCheckError::RootDuplicated { root });
        }
        if g.cell >= cells.len() {
            return Err(MapCheckError::CellOutOfRange { root, cell: g.cell });
        }
        let cell = &cells[g.cell];
        if g.pins.len() != cell.num_inputs {
            return Err(MapCheckError::PinArity {
                root,
                pins: g.pins.len(),
                inputs: cell.num_inputs,
            });
        }
        let mut a = 0.0f64;
        for (pin, &(src, _compl)) in g.pins.iter().enumerate() {
            let src_arr = match src {
                Source::Pi(i) => {
                    if i >= aig.num_pis() {
                        return Err(MapCheckError::PinSourceInvalid { gate: pos as u32 });
                    }
                    0.0
                }
                Source::Node(base) => match arr.get(&(base.index() as u32)) {
                    // Emitted-earlier is exactly "already has an arrival".
                    Some(&t) => t,
                    None => {
                        return Err(MapCheckError::PinSourceInvalid { gate: pos as u32 });
                    }
                },
            };
            a = a.max(src_arr + cell.pin_delay[pin]);
        }
        arr.insert(root, a);
        area += cell.area;
    }

    // Primary outputs: one binding per AIG output, sources covered.
    if mapping.pos.len() != aig.num_pos() {
        return Err(MapCheckError::PoCount {
            expected: aig.num_pos(),
            actual: mapping.pos.len(),
        });
    }
    let mut delay = 0.0f64;
    for (i, po) in mapping.pos.iter().enumerate() {
        match *po {
            PoBinding::Const(_) => {}
            PoBinding::Signal(src, _compl) => match src {
                Source::Pi(p) => {
                    if p >= aig.num_pis() {
                        return Err(MapCheckError::PoSourceInvalid { po: i });
                    }
                }
                Source::Node(base) => match arr.get(&(base.index() as u32)) {
                    Some(&t) => delay = delay.max(t),
                    None => return Err(MapCheckError::PoSourceInvalid { po: i }),
                },
            },
        }
    }

    // Summary statistics versus the netlist actually emitted.
    let s = &mapping.stats;
    if free_pol && s.inverters != 0 {
        return Err(MapCheckError::InverterCount { inverters: s.inverters });
    }
    if s.gates != mapping.gates.len() + s.inverters {
        return Err(MapCheckError::GateCount {
            stored: s.gates,
            actual: mapping.gates.len() + s.inverters,
        });
    }
    area += s.inverters as f64 * library.inverter_area();
    if (area - s.area).abs() > EPS * area.max(1.0) {
        return Err(MapCheckError::AreaMismatch { stored: s.area, actual: area });
    }
    if (s.delay_ps - s.delay_norm * library.tau_ps()).abs() > EPS * s.delay_ps.max(1.0) {
        return Err(MapCheckError::DelayScale { delay_ps: s.delay_ps });
    }
    // Arrival consistency. Free-polarity mapping has no inverter
    // penalties, so the recomputation is exact; CMOS inverter insertion
    // depends on per-node phase the Mapping does not store, making the
    // recomputed value a lower bound on the true critical path.
    let consistent = if free_pol {
        (delay - s.delay_norm).abs() <= EPS * s.delay_norm.max(1.0)
    } else {
        delay <= s.delay_norm + EPS * s.delay_norm.max(1.0)
    };
    if !consistent {
        return Err(MapCheckError::ArrivalMismatch { stored: s.delay_norm, derived: delay });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions, MappedGate};
    use cntfet_core::LogicFamily;

    fn adder(bits: usize) -> Aig {
        let mut g = Aig::new("adder");
        let a = g.add_pis(bits);
        let b = g.add_pis(bits);
        let mut carry = cntfet_aig::Lit::FALSE;
        for i in 0..bits {
            let x = g.xor(a[i], b[i]);
            let s = g.xor(x, carry);
            g.add_po(s);
            let c1 = g.and(a[i], b[i]);
            let c2 = g.and(x, carry);
            carry = g.or(c1, c2);
        }
        g.add_po(carry);
        g
    }

    fn mapped(free_pol: bool) -> (Aig, Mapping, Library) {
        let fam = if free_pol { LogicFamily::TgStatic } else { LogicFamily::CmosStatic };
        let lib = Library::new(fam);
        let g = adder(4);
        let m = map(&g, &lib, MapOptions::default());
        (g, m, lib)
    }

    #[test]
    fn healthy_mappings_pass() {
        for free_pol in [true, false] {
            let (g, m, lib) = mapped(free_pol);
            assert_eq!(check_mapping(&g, &m, &lib), Ok(()));
        }
    }

    #[test]
    fn detects_cover_corruption() {
        let (g, m, lib) = mapped(true);

        // A dangling pin: re-point a later gate's pin at a node that is
        // not part of the cover (its own root — self-loop).
        let mut dangling = m.clone();
        let last = dangling.gates.len() - 1;
        let root = dangling.gates[last].root;
        dangling.gates[last].pins[0].0 = Source::Node(root);
        assert!(matches!(
            check_mapping(&g, &dangling, &lib),
            Err(MapCheckError::PinSourceInvalid { .. })
        ));

        // Emission order violated: swapping a producer behind its
        // consumer breaks the emitted-earlier rule.
        let mut swapped = m.clone();
        let consumer = swapped
            .gates
            .iter()
            .position(|gt| {
                gt.pins.iter().any(|&(s, _)| matches!(s, Source::Node(_)))
            })
            .expect("an internal edge exists");
        let producer = swapped.gates[consumer]
            .pins
            .iter()
            .find_map(|&(s, _)| match s {
                Source::Node(b) => {
                    Some(swapped.gates.iter().position(|x| x.root == b).expect("covered"))
                }
                Source::Pi(_) => None,
            })
            .expect("internal producer");
        swapped.gates.swap(consumer, producer);
        assert!(matches!(
            check_mapping(&g, &swapped, &lib),
            Err(MapCheckError::PinSourceInvalid { .. })
        ));

        // A duplicated root.
        let mut duped = m.clone();
        let g0: MappedGate = duped.gates[last].clone();
        duped.gates.push(g0);
        assert!(matches!(
            check_mapping(&g, &duped, &lib),
            Err(MapCheckError::RootDuplicated { .. })
        ));

        // A root that is not a live AND (a PI node).
        let mut badroot = m.clone();
        badroot.gates[0].root = g.pis()[0];
        let r = check_mapping(&g, &badroot, &lib);
        assert!(
            matches!(
                r,
                Err(MapCheckError::RootNotLive { .. } | MapCheckError::PinSourceInvalid { .. })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn detects_cell_and_stat_corruption() {
        let (g, m, lib) = mapped(true);

        let mut cell = m.clone();
        cell.gates[0].cell = lib.cells().len();
        assert!(matches!(
            check_mapping(&g, &cell, &lib),
            Err(MapCheckError::CellOutOfRange { .. })
        ));

        let mut arity = m.clone();
        let extra = arity.gates[0].pins[0];
        arity.gates[0].pins.push(extra);
        assert!(matches!(check_mapping(&g, &arity, &lib), Err(MapCheckError::PinArity { .. })));

        let mut gates = m.clone();
        gates.stats.gates += 1;
        assert!(matches!(check_mapping(&g, &gates, &lib), Err(MapCheckError::GateCount { .. })));

        let mut area = m.clone();
        area.stats.area += 100.0;
        assert!(matches!(
            check_mapping(&g, &area, &lib),
            Err(MapCheckError::AreaMismatch { .. })
        ));

        let mut ps = m.clone();
        ps.stats.delay_ps *= 2.0;
        assert!(matches!(check_mapping(&g, &ps, &lib), Err(MapCheckError::DelayScale { .. })));

        let mut inv = m.clone();
        inv.stats.inverters += 1; // free-polarity library: must be 0
        assert!(matches!(
            check_mapping(&g, &inv, &lib),
            Err(MapCheckError::InverterCount { .. })
        ));

        let mut arrive = m.clone();
        arrive.stats.delay_norm *= 3.0;
        arrive.stats.delay_ps = arrive.stats.delay_norm * lib.tau_ps();
        assert!(matches!(
            check_mapping(&g, &arrive, &lib),
            Err(MapCheckError::ArrivalMismatch { .. })
        ));
    }

    #[test]
    fn detects_po_corruption() {
        let (g, m, lib) = mapped(true);

        let mut count = m.clone();
        count.pos.pop();
        assert!(matches!(check_mapping(&g, &count, &lib), Err(MapCheckError::PoCount { .. })));

        let mut src = m.clone();
        let bad = g
            .node_ids()
            .find(|&id| g.is_and(id) && !m.gates.iter().any(|gt| gt.root == id));
        if let Some(bad) = bad {
            let po = src
                .pos
                .iter()
                .position(|p| matches!(p, PoBinding::Signal(Source::Node(_), _)))
                .expect("a mapped PO exists");
            src.pos[po] = PoBinding::Signal(Source::Node(bad), false);
            let r = check_mapping(&g, &src, &lib);
            assert!(
                matches!(
                    r,
                    Err(MapCheckError::PoSourceInvalid { .. }
                        | MapCheckError::ArrivalMismatch { .. })
                ),
                "{r:?}"
            );
        }
    }

    #[test]
    fn cmos_arrival_is_a_lower_bound() {
        let (g, m, lib) = mapped(false);
        assert_eq!(check_mapping(&g, &m, &lib), Ok(()));
        // Inflating the stored delay keeps the lower-bound check green
        // (CMOS inverter penalties are unknowable from the Mapping)…
        let mut inflated = m.clone();
        inflated.stats.delay_norm += 1.0;
        inflated.stats.delay_ps = inflated.stats.delay_norm * lib.tau_ps();
        assert_eq!(check_mapping(&g, &inflated, &lib), Ok(()));
        // …but understating it below the pin-delay floor is caught.
        let mut lied = m.clone();
        lied.stats.delay_norm = 0.0;
        lied.stats.delay_ps = 0.0;
        assert!(matches!(
            check_mapping(&g, &lied, &lib),
            Err(MapCheckError::ArrivalMismatch { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = MapCheckError::RootDuplicated { root: 9 };
        assert!(e.to_string().contains('9'));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("twice"));
    }
}
