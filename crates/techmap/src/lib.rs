//! Technology mapping onto the ambipolar CNTFET and CMOS libraries.
//!
//! This crate closes the paper's synthesis flow (Sec. 4.4): optimized
//! AIGs are covered with library cells via k-feasible cuts and NPN
//! boolean matching, delay-optimally and with area-flow recovery. The
//! CNTFET libraries match with free input/output polarities (every
//! cell carries an output inverter), while CMOS pays explicit
//! inverters — the mechanism behind the paper's area/delay gap on
//! XOR-rich circuits.
//!
//! The entry point is [`map`], steered by [`MapOptions`]:
//!
//! * [`MapOptions::objective`] — [`Objective::Area`],
//!   [`Objective::Delay`] or [`Objective::Balanced`] covering;
//! * [`MapOptions::delay_rounds`] — arrival-aware re-enumeration
//!   rounds: after a first cover, cuts are re-enumerated under its
//!   mapped arrival times with [`CutRank::Arrival`] (each cut ranked
//!   by the arrival of its best library match, resolved against the
//!   library's NPN index during enumeration) and the covering passes
//!   rerun, iterating while the critical path improves;
//! * [`MapOptions::cut_rank`] — the enumeration ranking
//!   ([`CutRank::Size`], [`CutRank::Depth`], or [`CutRank::Arrival`]
//!   to enable the rounds for every objective);
//! * [`MapOptions::area_rounds`] / [`MapOptions::cuts_per_node`] /
//!   [`MapOptions::cut_size`] — recovery effort and cut budget.
//!
//! Every mapping can be certified against its source with
//! [`verify_mapping`] (or [`verify_mapping_report`], which also
//! returns verification-engine statistics).
//!
//! # Examples
//!
//! ```
//! use cntfet_aig::Aig;
//! use cntfet_core::{Library, LogicFamily};
//! use cntfet_techmap::{map, verify_mapping, MapOptions};
//! use cntfet_aig::CecResult;
//!
//! // A full adder maps into a couple of XOR-capable CNTFET cells.
//! let mut g = Aig::new("fa");
//! let p = g.add_pis(3);
//! let x = g.xor(p[0], p[1]);
//! let sum = g.xor(x, p[2]);
//! let c1 = g.and(p[0], p[1]);
//! let c2 = g.and(x, p[2]);
//! let cout = g.or(c1, c2);
//! g.add_po(sum);
//! g.add_po(cout);
//!
//! let lib = Library::new(LogicFamily::TgStatic);
//! let mapping = map(&g, &lib, MapOptions::default());
//! assert_eq!(verify_mapping(&g, &mapping, &lib), CecResult::Equivalent);
//! assert!(mapping.stats.gates <= 5);
//! ```
//!
//! The objective corners of the same engine, and the arrival-aware
//! delay guarantee — more rounds can never lengthen the critical path:
//!
//! ```
//! use cntfet_aig::Aig;
//! use cntfet_core::{Library, LogicFamily};
//! use cntfet_techmap::{map, MapOptions, Objective};
//!
//! let mut g = Aig::new("chain");
//! let p = g.add_pis(8);
//! let mut acc = p[0];
//! for &x in &p[1..] {
//!     acc = g.xor(acc, x);
//! }
//! g.add_po(acc);
//!
//! let lib = Library::new(LogicFamily::TgStatic);
//! let with = |objective, delay_rounds| {
//!     map(&g, &lib, MapOptions { objective, delay_rounds, ..Default::default() }).stats
//! };
//! let area = with(Objective::Area, 0);
//! let single = with(Objective::Delay, 0);   // single-enumeration engine
//! let iterated = with(Objective::Delay, 2); // arrival-aware rounds
//! assert!(area.area <= iterated.area + 1e-9);
//! assert!(iterated.delay_norm <= single.delay_norm + 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod check;
mod mapper;
mod matcher;
mod power;
mod verify;

pub use cntfet_aig::CutRank;
pub use check::{check_mapping, MapCheckError};
pub use mapper::{
    clear_map_cache, map, map_cache_stats, MapOptions, MapStats, MappedGate, Mapping, Objective,
    PoBinding, Source,
};
pub use matcher::{match_is_valid, CellMatch, Matcher};
pub use power::{estimate_energy, EnergyReport};
pub use verify::{mapping_to_aig, verify_mapping, verify_mapping_report};
