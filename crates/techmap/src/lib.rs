//! Technology mapping onto the ambipolar CNTFET and CMOS libraries.
//!
//! This crate closes the paper's synthesis flow (Sec. 4.4): optimized
//! AIGs are covered with library cells via k-feasible cuts and NPN
//! boolean matching, delay-optimally and with area-flow recovery. The
//! CNTFET libraries match with free input/output polarities (every
//! cell carries an output inverter), while CMOS pays explicit
//! inverters — the mechanism behind the paper's area/delay gap on
//! XOR-rich circuits.
//!
//! # Examples
//!
//! ```
//! use cntfet_aig::Aig;
//! use cntfet_core::{Library, LogicFamily};
//! use cntfet_techmap::{map, verify_mapping, MapOptions};
//! use cntfet_aig::CecResult;
//!
//! // A full adder maps into a couple of XOR-capable CNTFET cells.
//! let mut g = Aig::new("fa");
//! let p = g.add_pis(3);
//! let x = g.xor(p[0], p[1]);
//! let sum = g.xor(x, p[2]);
//! let c1 = g.and(p[0], p[1]);
//! let c2 = g.and(x, p[2]);
//! let cout = g.or(c1, c2);
//! g.add_po(sum);
//! g.add_po(cout);
//!
//! let lib = Library::new(LogicFamily::TgStatic);
//! let mapping = map(&g, &lib, MapOptions::default());
//! assert_eq!(verify_mapping(&g, &mapping, &lib), CecResult::Equivalent);
//! assert!(mapping.stats.gates <= 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod mapper;
mod matcher;
mod power;
mod verify;

pub use mapper::{map, MapOptions, MapStats, MappedGate, Mapping, Objective, PoBinding, Source};
pub use matcher::{match_is_valid, CellMatch, Matcher};
pub use power::{estimate_energy, EnergyReport};
pub use verify::{mapping_to_aig, verify_mapping, verify_mapping_report};
