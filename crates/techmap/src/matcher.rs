//! NPN boolean matching of cut functions against library cells.
//!
//! The heavy lifting — canonicalizing every cell and grouping by NPN
//! class — happens once per [`Library`] (see
//! [`Library::npn_matches`]). Matching a cut is then one
//! canonicalization of the cut function, one hash lookup, and a
//! transform composition per hit; and because the same cut functions
//! recur constantly during mapping, even the canonicalization is
//! memoized behind a word-keyed cache.

use cntfet_boolfn::{npn_canonical_cached, NpnTransform, TruthTable};
use cntfet_core::{Cell, Library};
use std::collections::HashMap;

/// A successful match: `transform.apply(cell_function) == cut_function`.
///
/// Its semantics for netlist construction: **cell pin `i` is driven by
/// cut variable `transform.perm(i)`, complemented iff
/// `transform.input_flipped(i)`; the node equals the cell function
/// output complemented iff `transform.output_flipped()`.**
#[derive(Debug, Clone)]
pub struct CellMatch {
    /// Index of the cell in the library.
    pub cell: usize,
    /// Transform from the cell function to the cut function.
    pub transform: NpnTransform,
}

/// Boolean matcher over a library's precomputed NPN index.
///
/// The matcher itself is a thin memo layer: cut functions are keyed by
/// their single-word truth table (all mapped cuts have ≤ 6 inputs), so
/// repeat lookups cost one hash of a `(u8, u64)` pair.
#[derive(Debug)]
pub struct Matcher<'lib> {
    library: &'lib Library,
    cache: HashMap<(u8, u64), Vec<CellMatch>>,
}

impl<'lib> Matcher<'lib> {
    /// Builds a matcher over a library (cheap — the NPN index already
    /// lives in the [`Library`]).
    pub fn new(library: &'lib Library) -> Matcher<'lib> {
        Matcher { library, cache: HashMap::new() }
    }

    /// Number of indexed cells.
    pub fn num_cells(&self) -> usize {
        self.library.cells().len()
    }

    /// All cells matching a cut function given as a replicated `u64`
    /// word over `nvars` variables (the form cut enumeration produces).
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 6`.
    pub fn matches_word(&mut self, nvars: usize, word: u64) -> &[CellMatch] {
        assert!(nvars <= 6, "cut function too wide for matching");
        let key = (nvars as u8, word);
        if !self.cache.contains_key(&key) {
            // Constant-time NPN-invariant pre-filters before paying
            // for canonicalization (`word` is replicated, so each of
            // the 2^nvars minterms appears 2^(6-nvars) times). A
            // rejected word is not cached either — the filters are
            // cheaper than the hash insert.
            let ones = (word.count_ones() >> (6 - nvars)) as u64;
            if !self.library.npn_popcount_feasible(nvars, ones)
                || !self.library.npn_cofactor_feasible(nvars, word)
            {
                return &[];
            }
            let canon = npn_canonical_cached(&TruthTable::from_bits(nvars, word));
            // h = T_h⁻¹(T_cell(cell_fn)): compose cell→canon with
            // canon→cut.
            let inv = canon.transform.inverse();
            let found: Vec<CellMatch> = self
                .library
                .npn_matches(&canon.table)
                .iter()
                .map(|(cell, t_cell)| CellMatch { cell: *cell, transform: t_cell.then(&inv) })
                .collect();
            self.cache.insert(key, found);
        }
        &self.cache[&key]
    }

    /// All cells matching the (support-compacted) cut function.
    ///
    /// # Panics
    ///
    /// Panics if `f` has more than 6 variables.
    pub fn matches(&mut self, f: &TruthTable) -> &[CellMatch] {
        assert!(f.nvars() <= 6, "cut function too wide for matching");
        self.matches_word(f.nvars(), f.words()[0])
    }
}

/// Verifies a match binding (used by tests and debug assertions).
pub fn match_is_valid(cell: &Cell, m: &CellMatch, cut_fn: &TruthTable) -> bool {
    m.transform.apply(&cell.function) == *cut_fn
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_core::LogicFamily;

    #[test]
    fn every_cell_matches_itself() {
        let lib = Library::new(LogicFamily::TgStatic);
        let mut m = Matcher::new(&lib);
        assert_eq!(m.num_cells(), 46);
        for (i, cell) in lib.cells().iter().enumerate() {
            let ms = m.matches(&cell.function).to_vec();
            assert!(!ms.is_empty(), "{} has no match", cell.name);
            assert!(ms.iter().any(|mm| mm.cell == i));
            for mm in &ms {
                assert!(match_is_valid(&lib.cells()[mm.cell], mm, &cell.function));
            }
        }
    }

    #[test]
    fn matches_under_random_npn_transform() {
        let lib = Library::new(LogicFamily::TgStatic);
        let mut m = Matcher::new(&lib);
        // F05 = (A⊕B)·C under a random transform still matches.
        let f05 = &lib.cells()[5].function;
        let t = NpnTransform::new(3, &[2, 0, 1], 0b101, true);
        let g = t.apply(f05);
        let ms = m.matches(&g).to_vec();
        assert!(!ms.is_empty());
        for mm in &ms {
            assert!(match_is_valid(&lib.cells()[mm.cell], mm, &g));
        }
    }

    #[test]
    fn word_and_table_lookups_agree() {
        let lib = Library::new(LogicFamily::TgStatic);
        let mut m = Matcher::new(&lib);
        let f = lib.cells()[5].function.clone(); // F05 = (A⊕B)·C
        let by_table: Vec<usize> = m.matches(&f).iter().map(|c| c.cell).collect();
        let by_word: Vec<usize> =
            m.matches_word(3, f.words()[0]).iter().map(|c| c.cell).collect();
        assert_eq!(by_table, by_word);
        assert!(!by_table.is_empty());
    }

    #[test]
    fn npn_prefilters_are_sound_on_random_words() {
        // Whenever the constant-time popcount/cofactor pre-filters
        // reject a word, full canonicalization must also find nothing
        // — the filters may only skip work, never matches.
        for family in [LogicFamily::TgStatic, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for _ in 0..500 {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                for nvars in 2..=6usize {
                    let w = cntfet_boolfn::word::replicate(nvars, x);
                    let ones = (w.count_ones() >> (6 - nvars)) as u64;
                    let rejected = !lib.npn_popcount_feasible(nvars, ones)
                        || !lib.npn_cofactor_feasible(nvars, w);
                    if rejected {
                        let canon = cntfet_boolfn::npn_canonical(&TruthTable::from_bits(nvars, w));
                        assert!(
                            lib.npn_matches(&canon.table).is_empty(),
                            "{family:?}: filter rejected matchable word {w:#x} over {nvars} vars"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cmos_matches_all_two_input_functions() {
        let lib = Library::new(LogicFamily::CmosStatic);
        let mut m = Matcher::new(&lib);
        // All 2-input AND-like functions land on F03's class.
        for bits in [0b1000u64, 0b0100, 0b0010, 0b0001, 0b0111, 0b1110, 0b1101, 0b1011] {
            let f = TruthTable::from_bits(2, bits);
            assert!(!m.matches(&f).is_empty(), "bits {bits:#b}");
        }
        // XOR has no CMOS single-cell match.
        let x = TruthTable::from_bits(2, 0b0110);
        assert!(m.matches(&x).is_empty());
    }

    #[test]
    fn xor3_matches_cntfet_but_not_cmos() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = &(&a ^ &b) ^ &c;
        let cmos = Library::new(LogicFamily::CmosStatic);
        let mut cm = Matcher::new(&cmos);
        assert!(cm.matches(&f).is_empty());
        // 3-input parity is not among the 46 either (it needs XOR of
        // XOR, not series/parallel) — but (A⊕B)+C style functions are.
        let g = &(&a ^ &b) | &c;
        let tg = Library::new(LogicFamily::TgStatic);
        let mut tm = Matcher::new(&tg);
        assert!(!tm.matches(&g).is_empty());
    }
}
