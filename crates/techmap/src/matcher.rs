//! NPN boolean matching of cut functions against library cells.

use cntfet_boolfn::{npn_canonical, NpnTransform, TruthTable};
use cntfet_core::{Cell, Library};
use std::collections::HashMap;

/// A successful match: `transform.apply(cell_function) == cut_function`.
///
/// Its semantics for netlist construction: **cell pin `i` is driven by
/// cut variable `transform.perm(i)`, complemented iff
/// `transform.input_flipped(i)`; the node equals the cell function
/// output complemented iff `transform.output_flipped()`.**
#[derive(Debug, Clone)]
pub struct CellMatch {
    /// Index of the cell in the library.
    pub cell: usize,
    /// Transform from the cell function to the cut function.
    pub transform: NpnTransform,
}

/// Boolean matcher: indexes a library by NPN-canonical form and
/// resolves cut functions to cell bindings (with memoization — the
/// same cut functions recur constantly during mapping).
#[derive(Debug)]
pub struct Matcher {
    /// Canonical form → (cell index, transform cell→canon).
    index: HashMap<TruthTable, Vec<(usize, NpnTransform)>>,
    cache: HashMap<TruthTable, Vec<CellMatch>>,
    num_cells: usize,
}

impl Matcher {
    /// Builds the matcher for a library.
    pub fn new(library: &Library) -> Matcher {
        let mut index: HashMap<TruthTable, Vec<(usize, NpnTransform)>> = HashMap::new();
        for (i, cell) in library.cells().iter().enumerate() {
            let canon = npn_canonical(&cell.function);
            index.entry(canon.table).or_default().push((i, canon.transform));
        }
        Matcher { index, cache: HashMap::new(), num_cells: library.cells().len() }
    }

    /// Number of indexed cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// All cells matching the (support-compacted) cut function.
    ///
    /// # Panics
    ///
    /// Panics if `f` has more than 6 variables.
    pub fn matches(&mut self, f: &TruthTable) -> &[CellMatch] {
        if !self.cache.contains_key(f) {
            let canon = npn_canonical(f);
            let mut found = Vec::new();
            if let Some(entries) = self.index.get(&canon.table) {
                // h = T_h⁻¹(T_cell(cell_fn)): compose cell→canon with
                // canon→cut.
                let inv = canon.transform.inverse();
                for (cell, t_cell) in entries {
                    found.push(CellMatch { cell: *cell, transform: t_cell.then(&inv) });
                }
            }
            self.cache.insert(f.clone(), found);
        }
        self.cache.get(f).unwrap()
    }
}

/// Verifies a match binding (used by tests and debug assertions).
pub fn match_is_valid(cell: &Cell, m: &CellMatch, cut_fn: &TruthTable) -> bool {
    m.transform.apply(&cell.function) == *cut_fn
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_core::LogicFamily;

    #[test]
    fn every_cell_matches_itself() {
        let lib = Library::new(LogicFamily::TgStatic);
        let mut m = Matcher::new(&lib);
        assert_eq!(m.num_cells(), 46);
        for (i, cell) in lib.cells().iter().enumerate() {
            let ms = m.matches(&cell.function).to_vec();
            assert!(!ms.is_empty(), "{} has no match", cell.name);
            assert!(ms.iter().any(|mm| mm.cell == i));
            for mm in &ms {
                assert!(match_is_valid(&lib.cells()[mm.cell], mm, &cell.function));
            }
        }
    }

    #[test]
    fn matches_under_random_npn_transform() {
        let lib = Library::new(LogicFamily::TgStatic);
        let mut m = Matcher::new(&lib);
        // F05 = (A⊕B)·C under a random transform still matches.
        let f05 = &lib.cells()[5].function;
        let t = NpnTransform::new(3, &[2, 0, 1], 0b101, true);
        let g = t.apply(f05);
        let ms = m.matches(&g).to_vec();
        assert!(!ms.is_empty());
        for mm in &ms {
            assert!(match_is_valid(&lib.cells()[mm.cell], mm, &g));
        }
    }

    #[test]
    fn cmos_matches_all_two_input_functions() {
        let lib = Library::new(LogicFamily::CmosStatic);
        let mut m = Matcher::new(&lib);
        // All 2-input AND-like functions land on F03's class.
        for bits in [0b1000u64, 0b0100, 0b0010, 0b0001, 0b0111, 0b1110, 0b1101, 0b1011] {
            let f = TruthTable::from_bits(2, bits);
            assert!(!m.matches(&f).is_empty(), "bits {bits:#b}");
        }
        // XOR has no CMOS single-cell match.
        let x = TruthTable::from_bits(2, 0b0110);
        assert!(m.matches(&x).is_empty());
    }

    #[test]
    fn xor3_matches_cntfet_but_not_cmos() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = &(&a ^ &b) ^ &c;
        let mut cm = Matcher::new(&Library::new(LogicFamily::CmosStatic));
        assert!(cm.matches(&f).is_empty());
        // 3-input parity is not among the 46 either (it needs XOR of
        // XOR, not series/parallel) — but (A⊕B)+C style functions are.
        let g = &(&a ^ &b) | &c;
        let mut tm = Matcher::new(&Library::new(LogicFamily::TgStatic));
        assert!(!tm.matches(&g).is_empty());
    }
}
