//! Cut-based technology mapping onto a characterized library.
//!
//! The flow mirrors what the paper obtains from ABC + genlib
//! (Sec. 4.4): k-feasible priority cuts, NPN boolean matching, a
//! delay-optimal forward pass, and required-time-constrained
//! area-flow recovery rounds.
//!
//! Polarity handling is the paper's key asymmetry:
//!
//! * **CNTFET libraries** put an output inverter in every cell, so
//!   both polarities of every signal exist and complemented edges are
//!   free (their cost is already inside the cell's area/delay).
//! * **CMOS** pays an explicit inverter whenever a consumer needs the
//!   polarity a driver does not produce; the mapper tracks a physical
//!   *phase* per mapped node and charges/dedups inverters per driver.

use crate::matcher::Matcher;
use cntfet_aig::{cut_function, enumerate_cuts, Aig, NodeId};
use cntfet_boolfn::TruthTable;
use cntfet_core::Library;

/// Where a mapped-gate pin comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Primary input (by PI index).
    Pi(usize),
    /// Output of the mapped gate rooted at an AIG node.
    Node(NodeId),
}

/// One instantiated library cell.
#[derive(Debug, Clone)]
pub struct MappedGate {
    /// AIG node this gate implements.
    pub root: NodeId,
    /// Library cell index.
    pub cell: usize,
    /// Per cell pin: source and whether the pin receives the
    /// complement of the source's *logical* value.
    pub pins: Vec<(Source, bool)>,
    /// The node value equals the cell function complemented iff set.
    pub out_compl: bool,
}

/// Binding of a primary output.
#[derive(Debug, Clone, Copy)]
pub enum PoBinding {
    /// Constant output.
    Const(bool),
    /// Driven by a source, optionally complemented.
    Signal(Source, bool),
}

/// Summary statistics in the units of the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub struct MapStats {
    /// Number of gates (inverters included for CMOS).
    pub gates: usize,
    /// Explicit inverters (CMOS only; 0 for CNTFET).
    pub inverters: usize,
    /// Normalized area (unit-transistor units).
    pub area: f64,
    /// Logic depth in cells (inverters count a level).
    pub levels: u32,
    /// Critical-path delay in τ units.
    pub delay_norm: f64,
    /// Absolute delay in picoseconds (τ-scaled by family).
    pub delay_ps: f64,
}

/// A technology-mapped netlist.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Instantiated gates in topological order.
    pub gates: Vec<MappedGate>,
    /// Primary-output bindings.
    pub pos: Vec<PoBinding>,
    /// Statistics.
    pub stats: MapStats,
}

/// Mapper options.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// Maximum cut size (≤ 6; the library's widest cell).
    pub cut_size: usize,
    /// Priority cuts kept per node.
    pub cuts_per_node: usize,
    /// Area-recovery rounds after the delay-optimal pass.
    pub area_rounds: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions { cut_size: 6, cuts_per_node: 10, area_rounds: 2 }
    }
}

const ALIAS: usize = usize::MAX;

/// A candidate implementation of a node.
#[derive(Debug, Clone)]
struct Cand {
    /// Library cell, or [`ALIAS`] for a wire/complement alias.
    cell: usize,
    /// Per pin: (leaf AIG node, complemented).
    pins: Vec<(NodeId, bool)>,
    /// Node = cell output ⊕ out_compl.
    out_compl: bool,
}

/// Maps an AIG onto a library.
///
/// # Panics
///
/// Panics if some node cannot be matched (cannot occur with the
/// built-in libraries: every 2-input cut matches the AND/OR cells).
pub fn map(aig: &Aig, library: &Library, opts: MapOptions) -> Mapping {
    let mut matcher = Matcher::new(library);
    let cut_size = opts.cut_size.min(6).max(2);
    let cuts = enumerate_cuts(aig, cut_size, opts.cuts_per_node);
    let free_pol = library.free_polarity();
    let inv_delay = if free_pol { 0.0 } else { library.inverter_delay() };
    let inv_area = if free_pol { 0.0 } else { library.inverter_area() };
    let fanout = aig.fanout_counts();

    // ---- candidate generation ----
    let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); aig.num_nodes()];
    for id in aig.and_ids() {
        let mut list = Vec::new();
        for cut in cuts.of(id).iter().filter(|c| c.size() >= 2) {
            let tt = cut_function(aig, id, cut);
            // Compact onto the true support.
            let support: Vec<usize> =
                (0..tt.nvars()).filter(|&v| tt.depends_on(v)).collect();
            let leaves: Vec<NodeId> = support.iter().map(|&v| cut.leaves()[v]).collect();
            match support.len() {
                0 => continue, // constant cone: handled by strash upstream
                1 => {
                    // The node is a (possibly complemented) wire.
                    let compl = !tt.eval(1 << support[0]);
                    // Re-check: tt is var or !var on that support.
                    list.push(Cand {
                        cell: ALIAS,
                        pins: vec![(leaves[0], compl)],
                        out_compl: false,
                    });
                }
                k => {
                    let compact = compact_tt(&tt, &support, k);
                    for m in matcher.matches(&compact).to_vec() {
                        let cell = &library.cells()[m.cell];
                        let pins: Vec<(NodeId, bool)> = (0..cell.num_inputs)
                            .map(|pin| {
                                (leaves[m.transform.perm(pin)], m.transform.input_flipped(pin))
                            })
                            .collect();
                        list.push(Cand {
                            cell: m.cell,
                            pins,
                            out_compl: m.transform.output_flipped(),
                        });
                    }
                }
            }
        }
        assert!(
            !list.is_empty(),
            "no candidate for node {id:?} — library incomplete"
        );
        cands[id.index()] = list;
    }

    // ---- iterative selection ----
    // Physical phase per node: CMOS gates naturally output ¬f_cell;
    // phase[n] = true means the physical signal is ¬node.
    let n = aig.num_nodes();
    let mut choice: Vec<usize> = vec![0; n];
    let mut arr: Vec<f64> = vec![0.0; n]; // physical-output arrival
    let mut phase: Vec<bool> = vec![false; n];
    let mut aflow: Vec<f64> = vec![0.0; n];
    let mut required: Vec<f64> = vec![f64::INFINITY; n];

    let eval_cand = |c: &Cand,
                     arr: &[f64],
                     phase: &[bool],
                     aflow: &[f64],
                     library: &Library|
     -> (f64, f64, bool) {
        // Returns (arrival, area_flow, phase of physical output).
        if c.cell == ALIAS {
            let (leaf, compl) = c.pins[0];
            let ph = phase[leaf.index()] ^ compl;
            return (arr[leaf.index()], aflow[leaf.index()], if free_pol { false } else { ph });
        }
        let cell = &library.cells()[c.cell];
        let mut a = 0.0f64;
        let mut flow = cell.area;
        for (pin, &(leaf, compl)) in c.pins.iter().enumerate() {
            let needs_inv = !free_pol && (phase[leaf.index()] ^ compl);
            let pin_arr = arr[leaf.index()]
                + if needs_inv { inv_delay } else { 0.0 }
                + cell.pin_delay[pin];
            a = a.max(pin_arr);
            let fo = fanout[leaf.index()].max(1) as f64;
            flow += aflow[leaf.index()] / fo + if needs_inv { inv_area / fo } else { 0.0 };
        }
        // CMOS physical output = ¬f_cell(pins) = node ⊕ ¬out_compl.
        let ph = if free_pol { false } else { !c.out_compl };
        (a, flow, ph)
    };

    // Pass 0: delay-optimal; passes 1..: area flow under required time.
    for round in 0..(1 + opts.area_rounds) {
        for id in aig.and_ids() {
            let i = id.index();
            let mut best: Option<(usize, f64, f64, bool)> = None;
            for (ci, c) in cands[i].iter().enumerate() {
                let (a, flow, ph) = eval_cand(c, &arr, &phase, &aflow, library);
                let better = match &best {
                    None => true,
                    Some((_, ba, bflow, _)) => {
                        if round == 0 {
                            a < ba - 1e-9 || (a < ba + 1e-9 && flow < bflow - 1e-9)
                        } else {
                            // Area mode: respect required time.
                            let fits = a <= required[i] + 1e-9;
                            let best_fits = *ba <= required[i] + 1e-9;
                            match (fits, best_fits) {
                                (true, false) => true,
                                (false, true) => false,
                                _ => flow < bflow - 1e-9 || (flow < bflow + 1e-9 && a < ba - 1e-9),
                            }
                        }
                    }
                };
                if better {
                    best = Some((ci, a, flow, ph));
                }
            }
            let (ci, a, flow, ph) = best.expect("candidates nonempty");
            choice[i] = ci;
            arr[i] = a;
            aflow[i] = flow;
            phase[i] = ph;
        }
        if round == opts.area_rounds {
            break;
        }
        // Required-time propagation over the current cover.
        let target = aig
            .pos()
            .iter()
            .map(|po| po_arrival(aig, po, &arr, &phase, free_pol, inv_delay))
            .fold(0.0f64, f64::max);
        for r in required.iter_mut() {
            *r = f64::INFINITY;
        }
        for po in aig.pos() {
            let node = po.node();
            if aig.is_and(node) {
                let pen = if !free_pol && (phase[node.index()] ^ po.is_complement()) {
                    inv_delay
                } else {
                    0.0
                };
                required[node.index()] = required[node.index()].min(target - pen);
            }
        }
        for id in aig.and_ids().collect::<Vec<_>>().into_iter().rev() {
            let i = id.index();
            if required[i].is_infinite() {
                continue;
            }
            let c = &cands[i][choice[i]];
            if c.cell == ALIAS {
                let (leaf, _) = c.pins[0];
                required[leaf.index()] = required[leaf.index()].min(required[i]);
                continue;
            }
            let cell = &library.cells()[c.cell];
            for (pin, &(leaf, compl)) in c.pins.iter().enumerate() {
                let pen = if !free_pol && (phase[leaf.index()] ^ compl) { inv_delay } else { 0.0 };
                let req = required[i] - cell.pin_delay[pin] - pen;
                required[leaf.index()] = required[leaf.index()].min(req);
            }
        }
    }

    // ---- cover extraction ----
    extract(aig, library, &cands, &choice, &arr, &phase, free_pol, inv_delay, inv_area)
}

fn compact_tt(tt: &TruthTable, support: &[usize], k: usize) -> TruthTable {
    TruthTable::from_fn(k, |m| {
        let mut full = 0u64;
        for (i, &v) in support.iter().enumerate() {
            if m >> i & 1 == 1 {
                full |= 1 << v;
            }
        }
        tt.eval(full)
    })
}

fn po_arrival(
    aig: &Aig,
    po: &cntfet_aig::Lit,
    arr: &[f64],
    phase: &[bool],
    free_pol: bool,
    inv_delay: f64,
) -> f64 {
    let node = po.node();
    if node == NodeId::CONST || aig.is_pi(node) {
        return 0.0;
    }
    let mismatch = !free_pol && (phase[node.index()] ^ po.is_complement());
    arr[node.index()] + if mismatch { inv_delay } else { 0.0 }
}

#[allow(clippy::too_many_arguments)]
fn extract(
    aig: &Aig,
    library: &Library,
    cands: &[Vec<Cand>],
    choice: &[usize],
    arr: &[f64],
    phase: &[bool],
    free_pol: bool,
    inv_delay: f64,
    inv_area: f64,
) -> Mapping {
    let n = aig.num_nodes();
    // Resolve aliases: alias_of[node] = (base source, compl).
    // A node implemented as ALIAS forwards to its single pin.
    let mut resolved: Vec<Option<(Source, bool)>> = vec![None; n];
    let pi_index: std::collections::HashMap<NodeId, usize> =
        aig.pis().iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let resolve = |node: NodeId,
                   resolved: &mut Vec<Option<(Source, bool)>>,
                   needed: &mut Vec<bool>| {
        // Iterative resolution following alias chains.
        let mut stack = vec![node];
        while let Some(cur) = stack.pop() {
            if resolved[cur.index()].is_some() {
                continue;
            }
            if aig.is_pi(cur) {
                resolved[cur.index()] = Some((Source::Pi(pi_index[&cur]), false));
                continue;
            }
            let c = &cands[cur.index()][choice[cur.index()]];
            if c.cell == ALIAS {
                let (leaf, compl) = c.pins[0];
                match resolved[leaf.index()] {
                    Some((src, lc)) => {
                        resolved[cur.index()] = Some((src, lc ^ compl));
                    }
                    None => {
                        stack.push(cur);
                        stack.push(leaf);
                    }
                }
            } else {
                resolved[cur.index()] = Some((Source::Node(cur), false));
                needed[cur.index()] = true;
                for &(leaf, _) in &c.pins {
                    stack.push(leaf);
                }
            }
        }
    };

    let mut needed = vec![false; n];
    for po in aig.pos() {
        let node = po.node();
        if node != NodeId::CONST {
            resolve(node, &mut resolved, &mut needed);
        }
    }

    // Emit gates in topological order; rewrite pins through aliases.
    let mut gates = Vec::new();
    let mut area = 0.0f64;
    // Track, per physical driver, whether an inverter is consumed
    // (CMOS only): key = Source, value = inverter needed.
    let mut inv_needed: std::collections::HashSet<SourceKey> = std::collections::HashSet::new();
    // Levels per source (physical).
    let mut level: Vec<u32> = vec![0; n];
    let pi_level = vec![0u32; aig.num_pis()];

    for id in aig.and_ids() {
        if !needed[id.index()] {
            continue;
        }
        let c = &cands[id.index()][choice[id.index()]];
        let cell = &library.cells()[c.cell];
        let mut pins = Vec::with_capacity(c.pins.len());
        let mut lvl = 0u32;
        for &(leaf, compl) in &c.pins {
            let (src, lc) = resolved[leaf.index()].expect("leaf resolved");
            let pin_compl = compl ^ lc;
            // Physical phase of the source:
            let src_phase = match src {
                Source::Pi(_) => false,
                Source::Node(base) => phase[base.index()],
            };
            let needs_inv = !free_pol && (src_phase ^ pin_compl);
            if needs_inv {
                inv_needed.insert(SourceKey::from(src));
            }
            let src_level = match src {
                Source::Pi(i) => pi_level[i],
                Source::Node(base) => level[base.index()],
            };
            lvl = lvl.max(src_level + u32::from(needs_inv));
            pins.push((src, pin_compl));
        }
        level[id.index()] = lvl + 1;
        area += cell.area;
        gates.push(MappedGate { root: id, cell: c.cell, pins, out_compl: c.out_compl });
    }

    // Primary outputs.
    let mut pos = Vec::with_capacity(aig.num_pos());
    let mut delay_norm = 0.0f64;
    let mut levels = 0u32;
    for po in aig.pos() {
        let node = po.node();
        if node == NodeId::CONST {
            pos.push(PoBinding::Const(po.is_complement()));
            continue;
        }
        let (src, lc) = resolved[node.index()].expect("PO cone resolved");
        let compl = po.is_complement() ^ lc;
        let src_phase = match src {
            Source::Pi(_) => false,
            Source::Node(base) => phase[base.index()],
        };
        let needs_inv = !free_pol && (src_phase ^ compl);
        if needs_inv {
            inv_needed.insert(SourceKey::from(src));
        }
        let (src_arr, src_level) = match src {
            Source::Pi(i) => (0.0, pi_level[i]),
            Source::Node(base) => (arr[base.index()], level[base.index()]),
        };
        delay_norm = delay_norm.max(src_arr + if needs_inv { inv_delay } else { 0.0 });
        levels = levels.max(src_level + u32::from(needs_inv));
        pos.push(PoBinding::Signal(src, compl));
    }

    let inverters = inv_needed.len();
    area += inverters as f64 * inv_area;
    let stats = MapStats {
        gates: gates.len() + if free_pol { 0 } else { inverters },
        inverters: if free_pol { 0 } else { inverters },
        area,
        levels,
        delay_norm,
        delay_ps: delay_norm * library.tau_ps(),
    };
    Mapping { gates, pos, stats }
}

/// Hashable key for [`Source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SourceKey {
    Pi(usize),
    Node(u32),
}

impl From<Source> for SourceKey {
    fn from(s: Source) -> SourceKey {
        match s {
            Source::Pi(i) => SourceKey::Pi(i),
            Source::Node(n) => SourceKey::Node(n.index() as u32),
        }
    }
}
