//! Cut-based technology mapping onto a characterized library.
//!
//! The flow mirrors what the paper obtains from ABC + genlib
//! (Sec. 4.4), structured as explicit passes over arena-backed
//! priority cuts:
//!
//! 1. **candidate generation** — every cut's in-pass function word is
//!    support-compacted and resolved against the library's
//!    precomputed NPN index (hash lookup + transform replay);
//! 2. **forward pass** — delay-optimal ([`Objective::Delay`],
//!    [`Objective::Balanced`]) or area-flow-first
//!    ([`Objective::Area`]);
//! 3. **area recovery** — area-flow rounds under required times,
//!    then one exact-area round that re-evaluates each choice against
//!    the real reference counts of the current cover.
//!
//! Polarity handling is the paper's key asymmetry:
//!
//! * **CNTFET libraries** put an output inverter in every cell, so
//!   both polarities of every signal exist and complemented edges are
//!   free (their cost is already inside the cell's area/delay).
//! * **CMOS** pays an explicit inverter whenever a consumer needs the
//!   polarity a driver does not produce; the mapper tracks a physical
//!   *phase* per mapped node and charges/dedups inverters per driver.

use crate::matcher::Matcher;
use cntfet_aig::{
    enumerate_cuts_custom, enumerate_cuts_custom_jobs, enumerate_cuts_with_jobs, Aig, CutArena,
    CutParams, CutRank, NodeId, ResultCache,
};
use cntfet_boolfn::word;
use cntfet_core::{Library, LogicFamily};

/// Where a mapped-gate pin comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Primary input (by PI index).
    Pi(usize),
    /// Output of the mapped gate rooted at an AIG node.
    Node(NodeId),
}

/// One instantiated library cell.
#[derive(Debug, Clone)]
pub struct MappedGate {
    /// AIG node this gate implements.
    pub root: NodeId,
    /// Library cell index.
    pub cell: usize,
    /// Per cell pin: source and whether the pin receives the
    /// complement of the source's *logical* value.
    pub pins: Vec<(Source, bool)>,
    /// The node value equals the cell function complemented iff set.
    pub out_compl: bool,
}

/// Binding of a primary output.
#[derive(Debug, Clone, Copy)]
pub enum PoBinding {
    /// Constant output.
    Const(bool),
    /// Driven by a source, optionally complemented.
    Signal(Source, bool),
}

/// Summary statistics in the units of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapStats {
    /// Number of gates (inverters included for CMOS).
    pub gates: usize,
    /// Explicit inverters (CMOS only; 0 for CNTFET).
    pub inverters: usize,
    /// Normalized area (unit-transistor units).
    pub area: f64,
    /// Logic depth in cells (inverters count a level).
    pub levels: u32,
    /// Critical-path delay in τ units.
    pub delay_norm: f64,
    /// Absolute delay in picoseconds (τ-scaled by family).
    pub delay_ps: f64,
}

/// A technology-mapped netlist.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Instantiated gates in topological order.
    pub gates: Vec<MappedGate>,
    /// Primary-output bindings.
    pub pos: Vec<PoBinding>,
    /// Statistics.
    pub stats: MapStats,
}

/// What the covering optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize area: area-flow-first forward pass, unconstrained
    /// exact-area recovery (delay is a tie-break only).
    Area,
    /// Minimize delay: depth-ranked cuts, delay-optimal forward pass,
    /// recovery strictly fenced by the delay-pass required times.
    Delay,
    /// Delay-optimal forward pass with area recovery inside the slack
    /// (the paper's ABC-style default).
    #[default]
    Balanced,
}

/// Mapper options.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// Maximum cut size (≤ 6; the library's widest cell).
    pub cut_size: usize,
    /// Priority cuts kept per node.
    pub cuts_per_node: usize,
    /// Area-recovery rounds after the forward pass (each is one
    /// area-flow round; any positive count adds a final exact-area
    /// round on mapping references).
    pub area_rounds: usize,
    /// Arrival-aware re-enumeration rounds (see [`CutRank::Arrival`]):
    /// after the first cover, cuts are re-enumerated under the mapped
    /// arrival times of the previous round — ranked by the arrival of
    /// each cut's best library match, tie-broken on area-flow — and
    /// the covering passes rerun, keeping the better cover. Rounds run
    /// under [`Objective::Delay`] (or any objective when `cut_rank` is
    /// [`CutRank::Arrival`]) and stop early once the critical path
    /// stops improving; `0` reproduces the single-enumeration engine
    /// exactly.
    pub delay_rounds: usize,
    /// Ranking of the initial cut enumeration. [`CutRank::Size`]
    /// (default) keeps the richest candidate variety per node;
    /// [`CutRank::Depth`] prefers structurally shallow cuts;
    /// [`CutRank::Arrival`] enables the arrival-aware rounds for every
    /// objective (the first enumeration still ranks by size — mapped
    /// arrivals only exist after a first cover).
    pub cut_rank: CutRank,
    /// Covering objective.
    pub objective: Objective,
    /// Worker threads (`0` resolves through the workspace
    /// [`threadpool::Jobs`] default, `1` forces the sequential
    /// engine). The mapped result is bit-identical for every value:
    /// cut enumeration shards over a fixed node grid, the
    /// forward/area-flow passes evaluate level-by-level (a node's
    /// candidates read only strictly-lower-level leaves, so each rank
    /// is embarrassingly parallel behind a barrier), and exact-area
    /// recovery speculates over fixed windows of nodes, committing a
    /// speculation only when no earlier commit invalidated its read
    /// footprint — re-evaluating it sequentially otherwise.
    pub jobs: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            cut_size: 6,
            cuts_per_node: 10,
            area_rounds: 2,
            delay_rounds: 2,
            cut_rank: CutRank::Size,
            objective: Objective::Balanced,
            jobs: 0,
        }
    }
}

const ALIAS: usize = usize::MAX;
const EPS: f64 = 1e-9;

/// A candidate implementation of a node.
#[derive(Debug, Clone)]
struct Cand {
    /// Library cell, or [`ALIAS`] for a wire/complement alias.
    cell: usize,
    /// Per pin: (leaf AIG node, complemented).
    pins: Vec<(NodeId, bool)>,
    /// Node = cell output ⊕ out_compl.
    out_compl: bool,
}

/// Library-dependent constants of one mapping run.
struct Ctx<'a> {
    aig: &'a Aig,
    library: &'a Library,
    free_pol: bool,
    inv_delay: f64,
    inv_area: f64,
    fanout: Vec<u32>,
}

/// Mutable per-node selection state threaded through the passes.
struct Sel {
    /// Chosen candidate per node.
    choice: Vec<usize>,
    /// Physical-output arrival time.
    arr: Vec<f64>,
    /// Physical phase (CMOS: true = the signal is ¬node).
    phase: Vec<bool>,
    /// Area flow.
    aflow: Vec<f64>,
    /// Required time of the physical output.
    required: Vec<f64>,
    /// References in the current cover (base gate nodes only).
    nref: Vec<u32>,
}

/// The rollback state of one recovery round (see [`Sel::snapshot`]).
struct SelSnapshot {
    choice: Vec<usize>,
    arr: Vec<f64>,
    phase: Vec<bool>,
    aflow: Vec<f64>,
}

impl Sel {
    /// Captures the selection state a recovery round may be rolled
    /// back to (`required`/`nref` are per-round scratch).
    fn snapshot(&self) -> SelSnapshot {
        SelSnapshot {
            choice: self.choice.clone(),
            arr: self.arr.clone(),
            phase: self.phase.clone(),
            aflow: self.aflow.clone(),
        }
    }

    fn restore(&mut self, snap: SelSnapshot) {
        self.choice = snap.choice;
        self.arr = snap.arr;
        self.phase = snap.phase;
        self.aflow = snap.aflow;
    }
}

/// Selection rule of one forward pass.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Minimize arrival, tie-break on area flow.
    Delay,
    /// Minimize area flow within required times.
    Flow,
    /// Minimize exact area (by reference counting) within required
    /// times.
    Exact,
}

/// Everything that determines a mapping outcome: the graph's
/// structural fingerprint, the library (fully identified by its
/// [`LogicFamily`] — [`Library::new`] is the only constructor), the
/// effective option fields and the resolved job count.
type MapKey = (u128, LogicFamily, usize, usize, usize, usize, CutRank, Objective, usize);

/// The process-wide mapping result cache. The mapper is deterministic
/// in its [`MapKey`], so a hit returns exactly the [`Mapping`] a
/// recomputation would produce.
fn map_cache() -> &'static ResultCache<MapKey, Mapping> {
    static CACHE: std::sync::OnceLock<ResultCache<MapKey, Mapping>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| ResultCache::new(512))
}

/// Hit/miss counters of the process-wide mapping result cache.
pub fn map_cache_stats() -> cntfet_boolfn::CacheStats {
    map_cache().stats()
}

/// Drops every entry of the process-wide mapping result cache
/// (counters keep accumulating) — used by benchmarks to measure cold
/// runs.
pub fn clear_map_cache() {
    map_cache().clear();
}

/// Maps an AIG onto a library.
///
/// Results are memoized process-wide under the graph's structural
/// fingerprint, the library family and the effective options
/// ([`map_cache_stats`] reads the counters; `CNTFET_NO_CACHE=1`
/// disables the memo).
///
/// # Panics
///
/// Panics if some node cannot be matched (cannot occur with the
/// built-in libraries: every 2-input cut matches the AND/OR cells).
pub fn map(aig: &Aig, library: &Library, opts: MapOptions) -> Mapping {
    let key = (
        aig.fingerprint(),
        library.family(),
        opts.cut_size.clamp(2, 6),
        opts.cuts_per_node,
        opts.area_rounds,
        opts.delay_rounds,
        opts.cut_rank,
        opts.objective,
        threadpool::Jobs::resolve(opts.jobs),
    );
    map_cache().get_or_insert_with(key, || map_uncached(aig, library, opts))
}

fn map_uncached(aig: &Aig, library: &Library, opts: MapOptions) -> Mapping {
    let mut matcher = Matcher::new(library);
    let cut_size = opts.cut_size.clamp(2, 6);
    let jobs = threadpool::Jobs::resolve(opts.jobs);
    // The first enumeration has no mapped arrivals to rank by, so
    // `CutRank::Arrival` starts from size ranking — which also keeps
    // the richest candidate variety per node; the paper's wide
    // XOR-capable cells make structurally deep cuts the fastest
    // implementations, so depth-ranked truncation would hurt even the
    // delay objective.
    let initial_rank = match opts.cut_rank {
        CutRank::Arrival => CutRank::Size,
        rank => rank,
    };
    let cuts = enumerate_cuts_with_jobs(
        aig,
        CutParams { k: cut_size, max_cuts: opts.cuts_per_node, rank: initial_rank },
        jobs,
    );
    let ctx = Ctx {
        aig,
        library,
        free_pol: library.free_polarity(),
        inv_delay: if library.free_polarity() { 0.0 } else { library.inverter_delay() },
        inv_area: if library.free_polarity() { 0.0 } else { library.inverter_area() },
        fanout: aig.fanout_counts(),
    };

    let cands = generate_cands(&ctx, &cuts, &mut matcher);
    let mut sel = run_cover(&ctx, &cands, &opts);
    let mut best = extract(&ctx, &cands, &sel);
    #[cfg(feature = "paranoid")]
    {
        let r = crate::check::check_mapping(aig, &best, library);
        assert!(r.is_ok(), "paranoid: initial cover is corrupt: {r:?}");
    }

    // ---- arrival-aware delay rounds ----
    // Structural cut ranking is a poor proxy for mapped arrival: the
    // wide XOR cells make some deep cuts fast and some shallow cuts
    // slow. Once a first cover exists, its per-node arrival and
    // area-flow values let enumeration rank every candidate cut by the
    // arrival of its *best library match* (NPN index resolved in-loop,
    // area-flow tie-break), which re-enumerates the priority lists
    // around implementations that are actually fast. Iterate to a
    // fixed point, bounded by `delay_rounds`; every round is guarded —
    // a cover that does not improve (delay, then area at equal delay)
    // is discarded — so the result can never be worse than round 0,
    // the plain single-enumeration flow.
    let rounds = if opts.objective == Objective::Delay || opts.cut_rank == CutRank::Arrival {
        opts.delay_rounds
    } else {
        0
    };
    for _ in 0..rounds {
        let arr = sel.arr.clone();
        let aflow = sel.aflow.clone();
        let params = CutParams { k: cut_size, max_cuts: opts.cuts_per_node, rank: CutRank::Arrival };
        // The arrival oracle queries a memoized library matcher, which
        // is mutable state — each enumeration worker gets its own
        // matcher via the factory form. The memo is transparent (same
        // answers with or without it), so per-worker tables rank every
        // cut exactly as the shared sequential matcher would.
        let cuts = if jobs <= 1 {
            let mut support: Vec<usize> = Vec::with_capacity(6);
            enumerate_cuts_custom(aig, params, |_root, leaves, tt| {
                arrival_cost(&ctx, &mut matcher, &mut support, &arr, &aflow, leaves, tt)
            })
        } else {
            let (ctx, arr, aflow) = (&ctx, &arr, &aflow);
            enumerate_cuts_custom_jobs(aig, params, jobs, || {
                let mut matcher = Matcher::new(ctx.library);
                let mut support: Vec<usize> = Vec::with_capacity(6);
                move |_root: NodeId, leaves: &[NodeId], tt: u64| {
                    arrival_cost(ctx, &mut matcher, &mut support, arr, aflow, leaves, tt)
                }
            })
        };
        let new_cands = generate_cands(&ctx, &cuts, &mut matcher);
        let new_sel = run_cover(&ctx, &new_cands, &opts);
        let m = extract(&ctx, &new_cands, &new_sel);
        #[cfg(feature = "paranoid")]
        {
            let r = crate::check::check_mapping(aig, &m, library);
            assert!(r.is_ok(), "paranoid: delay-round cover is corrupt: {r:?}");
        }
        // Accept in the objective's own order: area-first when area is
        // the sole objective (rounds reached via CutRank::Arrival),
        // delay-first otherwise — either way the kept cover dominates
        // round 0 on the primary metric.
        let improved = if opts.objective == Objective::Area {
            m.stats.area < best.stats.area - EPS
                || (m.stats.area < best.stats.area + EPS
                    && m.stats.delay_norm < best.stats.delay_norm - EPS)
        } else {
            m.stats.delay_norm < best.stats.delay_norm - EPS
                || (m.stats.delay_norm < best.stats.delay_norm + EPS
                    && m.stats.area < best.stats.area - EPS)
        };
        if !improved {
            break;
        }
        best = m;
        sel = new_sel;
    }
    best
}

/// Resolves every cut of every AND node against the library: NPN
/// matches become [`Cand`]s (single-support cuts become wire aliases).
///
/// # Panics
///
/// Panics if some node ends up without a candidate (the library lacks
/// a 2-input-complete cell set).
fn generate_cands(ctx: &Ctx<'_>, cuts: &CutArena, matcher: &mut Matcher<'_>) -> Vec<Vec<Cand>> {
    let aig = ctx.aig;
    let library = ctx.library;
    let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); aig.num_nodes()];
    let mut support: Vec<usize> = Vec::with_capacity(6);
    for id in aig.and_ids() {
        let mut list = Vec::new();
        for cut in cuts.of(id) {
            if cut.size() < 2 {
                continue;
            }
            let w = cut.function_word().expect("mapping cuts stay within one word");
            // Compact onto the true support.
            word::support(w, cut.size(), &mut support);
            match support.len() {
                0 => continue, // constant cone: handled by strash upstream
                1 => {
                    // The node is a (possibly complemented) wire.
                    let compl = w >> (1u64 << support[0]) & 1 == 0;
                    list.push(Cand {
                        cell: ALIAS,
                        pins: vec![(cut.leaves()[support[0]], compl)],
                        out_compl: false,
                    });
                }
                k => {
                    let compact = word::shrink_to(w, &support);
                    for m in matcher.matches_word(k, compact) {
                        let cell = &library.cells()[m.cell];
                        let pins: Vec<(NodeId, bool)> = (0..cell.num_inputs)
                            .map(|pin| {
                                (
                                    cut.leaves()[support[m.transform.perm(pin)]],
                                    m.transform.input_flipped(pin),
                                )
                            })
                            .collect();
                        list.push(Cand {
                            cell: m.cell,
                            pins,
                            out_compl: m.transform.output_flipped(),
                        });
                    }
                }
            }
        }
        assert!(!list.is_empty(), "no candidate for node {id:?} — library incomplete");
        cands[id.index()] = list;
    }
    cands
}

/// Runs the covering pass pipeline — forward pass, area-flow recovery
/// under required times, exact-area refinement — over a fixed
/// candidate set and returns the final per-node selection. Every pass
/// fans out across `opts.jobs` workers on large enough graphs; the
/// selection is bit-identical at every worker count.
fn run_cover(ctx: &Ctx<'_>, cands: &[Vec<Cand>], opts: &MapOptions) -> Sel {
    let jobs = threadpool::Jobs::resolve(opts.jobs);
    let n = ctx.aig.num_nodes();
    let mut sel = Sel {
        choice: vec![0; n],
        arr: vec![0.0; n],
        phase: vec![false; n],
        aflow: vec![0.0; n],
        required: vec![f64::INFINITY; n],
        nref: vec![0; n],
    };

    // Forward pass: delay-optimal, unless area is the sole objective.
    let mode0 = if opts.objective == Objective::Area { Mode::Flow } else { Mode::Delay };
    select_pass(ctx, cands, &mut sel, mode0, opts.objective, jobs);

    if opts.area_rounds > 0 {
        // Required times are the standard (heuristically stale) fence;
        // under the strict delay objective every recovery round is
        // additionally transactional — rolled back wholesale if it
        // pushed the cover past the frozen delay-pass target.
        let strict = opts.objective == Objective::Delay;
        let mut target = f64::INFINITY;
        let round = |sel: &mut Sel, mode: Mode, target: &mut f64| {
            prepare_required(ctx, cands, sel, opts.objective, target);
            let snap = strict.then(|| sel.snapshot());
            if mode == Mode::Exact {
                compute_refs(ctx, cands, sel);
            }
            select_pass(ctx, cands, sel, mode, opts.objective, jobs);
            if let Some(snap) = snap {
                if cover_delay(ctx, sel) > *target + EPS {
                    sel.restore(snap);
                }
            }
        };
        for _ in 0..opts.area_rounds {
            round(&mut sel, Mode::Flow, &mut target);
        }
        // Exact-area refinement is sound only under free polarity:
        // with explicit CMOS inverters, a choice switch flips phases
        // downstream, which re-prices inverters the reference counts
        // cannot see — so CMOS stops at area flow.
        if ctx.free_pol {
            round(&mut sel, Mode::Exact, &mut target);
        }
    }
    sel
}

/// Quantization scale turning τ-unit arrivals and area-flows into the
/// integer ranking costs cut enumeration consumes (LSB = 1/256 τ).
const RANK_SCALE: f64 = 256.0;

/// Ranking oracle of the arrival-aware delay rounds: the cost of a
/// cut is the mapped arrival time of its *best library match* under
/// the previous cover's per-node arrivals (primary), tie-broken on
/// that match's area-flow (secondary). Single-support cuts are free
/// wires; cuts no single cell implements rank last (they survive only
/// through the always-kept fanin-pair fallback).
fn arrival_cost(
    ctx: &Ctx<'_>,
    matcher: &mut Matcher<'_>,
    support: &mut Vec<usize>,
    arr: &[f64],
    aflow: &[f64],
    leaves: &[NodeId],
    tt: u64,
) -> (u32, u32) {
    let quant = |x: f64| (x * RANK_SCALE).round().clamp(0.0, u32::MAX as f64 - 1.0) as u32;
    word::support(tt, leaves.len(), support);
    let (best_arr, best_flow) = match support.len() {
        0 => (0.0, 0.0), // constant cone — free
        1 => {
            let leaf = leaves[support[0]];
            (arr[leaf.index()], aflow[leaf.index()]) // wire alias — free
        }
        k => {
            let compact = word::shrink_to(tt, support);
            let mut best = (f64::INFINITY, f64::INFINITY);
            for m in matcher.matches_word(k, compact) {
                let cell = &ctx.library.cells()[m.cell];
                let mut a = 0.0f64;
                let mut flow = cell.area;
                for pin in 0..cell.num_inputs {
                    let leaf = leaves[support[m.transform.perm(pin)]];
                    // Which pins end up inverted depends on leaf
                    // phases only the covering passes know; charging
                    // the inverter on every logically complemented pin
                    // is the conservative estimate (and vanishes under
                    // free polarity, where `inv_delay` is 0).
                    let pen =
                        if m.transform.input_flipped(pin) { ctx.inv_delay } else { 0.0 };
                    a = a.max(arr[leaf.index()] + pen + cell.pin_delay[pin]);
                    let fo = ctx.fanout[leaf.index()].max(1) as f64;
                    flow += aflow[leaf.index()] / fo;
                }
                if a < best.0 - EPS || (a < best.0 + EPS && flow < best.1) {
                    best = (a, flow);
                }
            }
            if best.0.is_infinite() {
                return (u32::MAX, u32::MAX);
            }
            best
        }
    };
    (quant(best_arr), quant(best_flow))
}

/// Returns (arrival, area_flow, phase of physical output) of a
/// candidate under the current leaf state.
fn eval_cand(ctx: &Ctx<'_>, sel: &Sel, c: &Cand) -> (f64, f64, bool) {
    if c.cell == ALIAS {
        let (leaf, compl) = c.pins[0];
        let ph = sel.phase[leaf.index()] ^ compl;
        return (
            sel.arr[leaf.index()],
            sel.aflow[leaf.index()],
            if ctx.free_pol { false } else { ph },
        );
    }
    let cell = &ctx.library.cells()[c.cell];
    let mut a = 0.0f64;
    let mut flow = cell.area;
    for (pin, &(leaf, compl)) in c.pins.iter().enumerate() {
        let needs_inv = !ctx.free_pol && (sel.phase[leaf.index()] ^ compl);
        let pin_arr = sel.arr[leaf.index()]
            + if needs_inv { ctx.inv_delay } else { 0.0 }
            + cell.pin_delay[pin];
        a = a.max(pin_arr);
        let fo = ctx.fanout[leaf.index()].max(1) as f64;
        flow += sel.aflow[leaf.index()] / fo
            + if needs_inv { ctx.inv_area / fo } else { 0.0 };
    }
    // CMOS physical output = ¬f_cell(pins) = node ⊕ ¬out_compl.
    let ph = if ctx.free_pol { false } else { !c.out_compl };
    (a, flow, ph)
}

/// Minimum AND-node count before a covering pass fans out — below
/// this, per-rank barriers and speculation bookkeeping cost more than
/// the work they split.
const COVER_PAR_MIN_ANDS: usize = 32;

/// Speculation window of the parallel exact-area pass: this many
/// consecutive nodes evaluate in parallel against the window-start
/// state before the sequential validate/commit sweep.
const EXACT_BATCH: usize = 128;

/// One forward selection pass over all AND nodes. With `jobs > 1` on
/// a large enough graph the pass fans out — level-by-level for
/// [`Mode::Delay`]/[`Mode::Flow`], speculate-and-validate windows for
/// [`Mode::Exact`] — selecting the exact cover the sequential pass
/// does at every worker count.
fn select_pass(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &mut Sel,
    mode: Mode,
    obj: Objective,
    jobs: usize,
) {
    let par = jobs > 1 && ctx.aig.num_ands() >= COVER_PAR_MIN_ANDS;
    match mode {
        Mode::Exact => select_exact(ctx, cands, sel, obj, if par { jobs } else { 1 }),
        Mode::Delay | Mode::Flow if par => select_flow_ranked(ctx, cands, sel, mode, obj, jobs),
        Mode::Delay | Mode::Flow => {
            for id in ctx.aig.and_ids() {
                let i = id.index();
                let (ci, a, flow, ph) = choose_flow(ctx, cands, sel, i, mode, obj);
                sel.choice[i] = ci;
                sel.arr[i] = a;
                sel.aflow[i] = flow;
                sel.phase[i] = ph;
            }
        }
    }
}

/// Candidate choice of node `i` under the [`Mode::Delay`] /
/// [`Mode::Flow`] rules — a pure function of the selection state
/// (only the cut leaves' slots and the node's own required time are
/// read), which is what makes the rank-parallel pass exact.
fn choose_flow(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &Sel,
    i: usize,
    mode: Mode,
    obj: Objective,
) -> (usize, f64, f64, bool) {
    debug_assert!(mode != Mode::Exact, "exact mode selects through exact_eval");
    let mut best: Option<(usize, f64, f64, bool)> = None;
    let mut best_cost = f64::INFINITY;
    for (ci, c) in cands[i].iter().enumerate() {
        let (a, flow, ph) = eval_cand(ctx, sel, c);
        let cost = flow;
        let better = match best {
            None => true,
            Some((_, ba, _, _)) if mode == Mode::Delay => {
                a < ba - EPS || (a < ba + EPS && cost < best_cost - EPS)
            }
            Some((_, ba, _, _)) => {
                let req = sel.required[i];
                let fits = a <= req + EPS;
                let best_fits = ba <= req + EPS;
                match (fits, best_fits) {
                    (true, false) => true,
                    (false, true) => false,
                    (false, false) if obj == Objective::Delay => {
                        // Strict delay mode: when nothing fits,
                        // chase arrival, not area.
                        a < ba - EPS || (a < ba + EPS && cost < best_cost - EPS)
                    }
                    _ => cost < best_cost - EPS || (cost < best_cost + EPS && a < ba - EPS),
                }
            }
        };
        if better {
            best = Some((ci, a, flow, ph));
            best_cost = cost;
        }
    }
    best.expect("candidates nonempty")
}

/// Rank-parallel [`Mode::Delay`]/[`Mode::Flow`] pass. A candidate
/// evaluation reads only its cut leaves' slots — nodes of strictly
/// lower structural level, committed by an earlier rank — plus the
/// node's own pass-constant required time. Nodes of one level are
/// therefore independent: evaluate them in parallel, commit after the
/// barrier, and the selection is the sequential pass's bit for bit.
fn select_flow_ranked(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &mut Sel,
    mode: Mode,
    obj: Objective,
    jobs: usize,
) {
    let levels = ctx.aig.levels();
    let depth = ctx.aig.and_ids().map(|id| levels[id.index()]).max().unwrap_or(0);
    let mut ranks: Vec<Vec<u32>> = vec![Vec::new(); depth as usize + 1];
    for id in ctx.aig.and_ids() {
        ranks[levels[id.index()] as usize].push(id.index() as u32);
    }
    for rank in ranks.iter().filter(|r| !r.is_empty()) {
        let picked = {
            let s: &Sel = sel;
            threadpool::par_map(jobs, rank.len(), |k| {
                choose_flow(ctx, cands, s, rank[k] as usize, mode, obj)
            })
        };
        for (k, (ci, a, flow, ph)) in picked.into_iter().enumerate() {
            let i = rank[k] as usize;
            sel.choice[i] = ci;
            sel.arr[i] = a;
            sel.aflow[i] = flow;
            sel.phase[i] = ph;
        }
    }
}

/// Exact-area pass. Sequentially (`jobs ≤ 1`) every node evaluates
/// through [`exact_eval`] against the live counts and commits
/// immediately. In parallel, consecutive windows of [`EXACT_BATCH`]
/// nodes speculate concurrently against the window-start state, then
/// a sequential sweep walks the window in id order committing each
/// speculation whose recorded read footprint no earlier commit
/// dirtied — and re-evaluating the rest against the live state. A
/// clean footprint means every slot the speculation read still holds
/// its window-start value, so its decision (and floating-point cost
/// arithmetic) is exactly what a live evaluation would produce;
/// re-runs *are* live evaluations — either way each commit equals
/// the sequential pass's.
fn select_exact(ctx: &Ctx<'_>, cands: &[Vec<Cand>], sel: &mut Sel, obj: Objective, jobs: usize) {
    let n = ctx.aig.num_nodes();
    if jobs <= 1 {
        let mut vr = RefOverlay::new();
        for id in ctx.aig.and_ids() {
            let i = id.index();
            vr.begin(n);
            let ch = exact_eval(ctx, cands, sel, &mut vr, i, obj, &mut None);
            apply_exact(sel, i, &ch);
        }
        return;
    }
    thread_local! {
        /// Per-worker speculation overlay, reused across windows (the
        /// generation stamp makes reuse O(1)).
        static OVERLAY: std::cell::RefCell<RefOverlay> =
            std::cell::RefCell::new(RefOverlay::new());
    }
    let ids: Vec<u32> = ctx.aig.and_ids().map(|id| id.index() as u32).collect();
    let mut dirty = vec![false; n];
    let mut vr = RefOverlay::new();
    for batch in ids.chunks(EXACT_BATCH) {
        let specs = {
            let s: &Sel = sel;
            threadpool::par_map(jobs, batch.len(), |k| {
                OVERLAY.with(|cell| {
                    let vr = &mut *cell.borrow_mut();
                    vr.begin(n);
                    let mut foot: Vec<u32> = Vec::new();
                    let ch = exact_eval(
                        ctx,
                        cands,
                        s,
                        vr,
                        batch[k] as usize,
                        obj,
                        &mut Some(&mut foot),
                    );
                    (foot, ch)
                })
            })
        };
        for d in dirty.iter_mut() {
            *d = false;
        }
        for (k, (foot, spec)) in specs.into_iter().enumerate() {
            let i = batch[k] as usize;
            let ch = if foot.iter().all(|&x| !dirty[x as usize]) {
                spec
            } else {
                vr.begin(n);
                exact_eval(ctx, cands, sel, &mut vr, i, obj, &mut None)
            };
            dirty[i] = true;
            for &(x, _) in &ch.refs {
                dirty[x as usize] = true;
            }
            apply_exact(sel, i, &ch);
        }
    }
}

/// One node's exact-area decision, with the net reference-count
/// changes its commit applies.
struct ExactChoice {
    ci: usize,
    a: f64,
    flow: f64,
    ph: bool,
    /// `(node index, new count)` pairs — empty for alias refreshes.
    refs: Vec<(u32, u32)>,
}

/// Commits one exact-area decision: the overlay-recorded
/// reference-count changes first, then the node's own slots.
fn apply_exact(sel: &mut Sel, i: usize, ch: &ExactChoice) {
    for &(x, v) in &ch.refs {
        sel.nref[x as usize] = v;
    }
    sel.choice[i] = ch.ci;
    sel.arr[i] = ch.a;
    sel.aflow[i] = ch.flow;
    sel.phase[i] = ch.ph;
}

/// The full [`Mode::Exact`] decision for node `i`, evaluated against
/// the selection state `sel` with reference counts read and written
/// through the overlay `vr` (the caller begins a fresh generation
/// first). With `foot` set, records the index of every node whose
/// mutable state — choice, arrival/flow/phase, reference count — the
/// decision read; a speculation stays valid exactly while those slots
/// hold the values it saw.
fn exact_eval(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &Sel,
    vr: &mut RefOverlay,
    i: usize,
    obj: Objective,
    foot: &mut Option<&mut Vec<u32>>,
) -> ExactChoice {
    touch(foot, i);
    let cur = &cands[i][sel.choice[i]];
    if cur.cell == ALIAS {
        // Alias choices stay fixed during exact recovery: they are
        // free, and consumers already resolve through them — see
        // the reference-count invariant in `compute_refs`. Their
        // mirrored state must still be refreshed, though: the
        // chain's base may just have been re-chosen, and consumers
        // (and the final delay report) read the alias's arrival.
        touch(foot, cur.pins[0].0.index());
        let (a, flow, ph) = eval_cand(ctx, sel, cur);
        return ExactChoice { ci: sel.choice[i], a, flow, ph, refs: Vec::new() };
    }
    let was_ref = vr.get(&sel.nref, i) > 0;
    if was_ref {
        let c = &cands[i][sel.choice[i]];
        deref_cover_v(ctx, cands, sel, vr, foot, c);
    }
    let mut best: Option<(usize, f64, f64, bool)> = None;
    let mut best_cost = f64::INFINITY;
    for (ci, c) in cands[i].iter().enumerate() {
        if c.cell == ALIAS {
            continue;
        }
        for &(leaf, _) in &c.pins {
            touch(foot, leaf.index());
        }
        let (a, flow, ph) = eval_cand(ctx, sel, c);
        let cost = trial_exact_area_v(ctx, cands, sel, vr, foot, c);
        let better = match best {
            None => true,
            Some((_, ba, _, _)) => {
                let req = sel.required[i];
                let fits = a <= req + EPS;
                let best_fits = ba <= req + EPS;
                match (fits, best_fits) {
                    (true, false) => true,
                    (false, true) => false,
                    (false, false) if obj == Objective::Delay => {
                        // Strict delay mode: when nothing fits,
                        // chase arrival, not area.
                        a < ba - EPS || (a < ba + EPS && cost < best_cost - EPS)
                    }
                    _ => cost < best_cost - EPS || (cost < best_cost + EPS && a < ba - EPS),
                }
            }
        };
        if better {
            best = Some((ci, a, flow, ph));
            best_cost = cost;
        }
    }
    let (ci, a, flow, ph) = best.expect("candidates nonempty");
    if was_ref {
        ref_cover_v(ctx, cands, sel, vr, foot, &cands[i][ci]);
    }
    ExactChoice { ci, a, flow, ph, refs: vr.changes(&sel.nref) }
}

/// Arrival time of a primary output under the current selection.
fn po_arrival(ctx: &Ctx<'_>, sel: &Sel, po: &cntfet_aig::Lit) -> f64 {
    let node = po.node();
    if node == NodeId::CONST || ctx.aig.is_pi(node) {
        return 0.0;
    }
    let mismatch = !ctx.free_pol && (sel.phase[node.index()] ^ po.is_complement());
    sel.arr[node.index()] + if mismatch { ctx.inv_delay } else { 0.0 }
}

/// Critical-path delay of the current cover.
fn cover_delay(ctx: &Ctx<'_>, sel: &Sel) -> f64 {
    ctx.aig.pos().iter().map(|po| po_arrival(ctx, sel, po)).fold(0.0f64, f64::max)
}

/// Tightens the recovery delay target and recomputes per-node
/// required times over the current cover. Under [`Objective::Area`]
/// required times stay infinite — recovery is unconstrained.
fn prepare_required(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &mut Sel,
    obj: Objective,
    target: &mut f64,
) {
    if obj == Objective::Area {
        return; // `required` stays +∞ from initialization.
    }
    let delay = cover_delay(ctx, sel);
    if obj == Objective::Delay {
        // Strict delay mode: the target only ever tightens, so later
        // rounds can never legitimize a slower cover.
        *target = target.min(delay);
    } else {
        *target = delay;
    }
    for r in sel.required.iter_mut() {
        *r = f64::INFINITY;
    }
    for po in ctx.aig.pos() {
        let node = po.node();
        if ctx.aig.is_and(node) {
            let pen = if !ctx.free_pol && (sel.phase[node.index()] ^ po.is_complement()) {
                ctx.inv_delay
            } else {
                0.0
            };
            required_min(&mut sel.required, node, *target - pen);
        }
    }
    for id in ctx.aig.and_ids().collect::<Vec<_>>().into_iter().rev() {
        let i = id.index();
        if sel.required[i].is_infinite() {
            continue;
        }
        let c = &cands[i][sel.choice[i]];
        let req_i = sel.required[i];
        if c.cell == ALIAS {
            let (leaf, _) = c.pins[0];
            required_min(&mut sel.required, leaf, req_i);
            continue;
        }
        let cell = &ctx.library.cells()[c.cell];
        for (pin, &(leaf, compl)) in c.pins.iter().enumerate() {
            let pen = if !ctx.free_pol && (sel.phase[leaf.index()] ^ compl) {
                ctx.inv_delay
            } else {
                0.0
            };
            required_min(&mut sel.required, leaf, req_i - cell.pin_delay[pin] - pen);
        }
    }
}

fn required_min(required: &mut [f64], node: NodeId, value: f64) {
    let r = &mut required[node.index()];
    *r = r.min(value);
}

/// Follows alias chains to the base gate node actually emitted for
/// `n`, or `None` when the chain ends at a PI/constant.
fn resolve_base(ctx: &Ctx<'_>, cands: &[Vec<Cand>], sel: &Sel, mut n: NodeId) -> Option<NodeId> {
    loop {
        if !ctx.aig.is_and(n) {
            return None;
        }
        let c = &cands[n.index()][sel.choice[n.index()]];
        if c.cell == ALIAS {
            n = c.pins[0].0;
        } else {
            return Some(n);
        }
    }
}

fn cand_area(ctx: &Ctx<'_>, c: &Cand) -> f64 {
    if c.cell == ALIAS {
        0.0
    } else {
        ctx.library.cells()[c.cell].area
    }
}

/// Generation-stamped copy-on-write overlay over [`Sel::nref`]:
/// `get` falls through to the base counts until a `set` shadows the
/// entry, and `begin` drops every shadow in O(1). Exact-area trials
/// run entirely inside the overlay, so a speculative evaluation never
/// mutates the shared selection — and the live (sequential) path uses
/// the same overlay, then commits its net changes, so both paths run
/// literally the same code.
struct RefOverlay {
    stamp: Vec<u32>,
    val: Vec<u32>,
    /// Indices shadowed this generation, in first-write order.
    log: Vec<u32>,
    gen: u32,
}

impl RefOverlay {
    fn new() -> RefOverlay {
        RefOverlay { stamp: Vec::new(), val: Vec::new(), log: Vec::new(), gen: 0 }
    }

    /// Starts a fresh generation sized for `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.val.resize(n, 0);
        }
        self.log.clear();
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        }
    }

    fn get(&self, base: &[u32], i: usize) -> u32 {
        if self.stamp[i] == self.gen {
            self.val[i]
        } else {
            base[i]
        }
    }

    fn set(&mut self, i: usize, v: u32) {
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.log.push(i as u32);
        }
        self.val[i] = v;
    }

    /// Net changes of this generation against the base counts
    /// (entries that returned to their base value are dropped).
    fn changes(&self, base: &[u32]) -> Vec<(u32, u32)> {
        self.log
            .iter()
            .filter_map(|&i| {
                let v = self.val[i as usize];
                (v != base[i as usize]).then_some((i, v))
            })
            .collect()
    }
}

/// Appends to a speculative read footprint, if one is being recorded.
fn touch(foot: &mut Option<&mut Vec<u32>>, i: usize) {
    if let Some(f) = foot.as_deref_mut() {
        f.push(i as u32);
    }
}

/// [`resolve_base`] with footprint recording: every alias link
/// crossed is a choice read the speculation depends on.
fn resolve_base_v(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &Sel,
    foot: &mut Option<&mut Vec<u32>>,
    mut n: NodeId,
) -> Option<NodeId> {
    loop {
        if !ctx.aig.is_and(n) {
            return None;
        }
        touch(foot, n.index());
        let c = &cands[n.index()][sel.choice[n.index()]];
        if c.cell == ALIAS {
            n = c.pins[0].0;
        } else {
            return Some(n);
        }
    }
}

/// References every base gate a candidate's pins resolve to,
/// cascading into newly-referenced gates; returns the area those new
/// references pull into the cover. Counts live in the overlay; the
/// stack traversal (and so the floating-point accumulation order) is
/// identical however the counts are backed.
fn ref_cover_v(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &Sel,
    vr: &mut RefOverlay,
    foot: &mut Option<&mut Vec<u32>>,
    c: &Cand,
) -> f64 {
    let mut area = 0.0;
    let mut stack: Vec<NodeId> = c
        .pins
        .iter()
        .filter_map(|&(leaf, _)| resolve_base_v(ctx, cands, sel, foot, leaf))
        .collect();
    while let Some(b) = stack.pop() {
        let i = b.index();
        touch(foot, i);
        let r = vr.get(&sel.nref, i) + 1;
        vr.set(i, r);
        if r == 1 {
            let cc = &cands[i][sel.choice[i]];
            area += cand_area(ctx, cc);
            stack.extend(
                cc.pins.iter().filter_map(|&(leaf, _)| resolve_base_v(ctx, cands, sel, foot, leaf)),
            );
        }
    }
    area
}

/// Inverse of [`ref_cover_v`]: releases the references a candidate's
/// pins hold on the cover.
fn deref_cover_v(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &Sel,
    vr: &mut RefOverlay,
    foot: &mut Option<&mut Vec<u32>>,
    c: &Cand,
) {
    let mut stack: Vec<NodeId> = c
        .pins
        .iter()
        .filter_map(|&(leaf, _)| resolve_base_v(ctx, cands, sel, foot, leaf))
        .collect();
    while let Some(b) = stack.pop() {
        let bi = b.index();
        touch(foot, bi);
        let r = vr.get(&sel.nref, bi);
        debug_assert!(r > 0, "dereferencing an unreferenced gate");
        vr.set(bi, r - 1);
        if r == 1 {
            let cc = &cands[bi][sel.choice[bi]];
            stack.extend(
                cc.pins.iter().filter_map(|&(leaf, _)| resolve_base_v(ctx, cands, sel, foot, leaf)),
            );
        }
    }
}

/// Exact incremental area a candidate would add to the current cover
/// (its own cell plus every gate its references would newly pull in),
/// evaluated by a reference/dereference trial that leaves the counts
/// untouched. CMOS polarity fixes are charged as amortized inverter
/// area per mismatched pin.
fn trial_exact_area_v(
    ctx: &Ctx<'_>,
    cands: &[Vec<Cand>],
    sel: &Sel,
    vr: &mut RefOverlay,
    foot: &mut Option<&mut Vec<u32>>,
    c: &Cand,
) -> f64 {
    let mut ex = cand_area(ctx, c) + ref_cover_v(ctx, cands, sel, vr, foot, c);
    deref_cover_v(ctx, cands, sel, vr, foot, c);
    if !ctx.free_pol {
        for &(leaf, compl) in &c.pins {
            if sel.phase[leaf.index()] ^ compl {
                ex += ctx.inv_area / ctx.fanout[leaf.index()].max(1) as f64;
            }
        }
    }
    ex
}

/// Rebuilds the reference counts of the cover reachable from the
/// primary outputs.
///
/// Invariant maintained by the exact pass: `nref[n] > 0` only for
/// base (non-alias) gate nodes; consumers of an alias node hold their
/// reference on the chain's base instead, which is why alias choices
/// are frozen while references are live.
fn compute_refs(ctx: &Ctx<'_>, cands: &[Vec<Cand>], sel: &mut Sel) {
    for r in sel.nref.iter_mut() {
        *r = 0;
    }
    let mut stack: Vec<NodeId> = ctx
        .aig
        .pos()
        .iter()
        .filter_map(|po| resolve_base(ctx, cands, sel, po.node()))
        .collect();
    while let Some(b) = stack.pop() {
        let i = b.index();
        sel.nref[i] += 1;
        if sel.nref[i] == 1 {
            let cc = &cands[i][sel.choice[i]];
            stack.extend(
                cc.pins.iter().filter_map(|&(leaf, _)| resolve_base(ctx, cands, sel, leaf)),
            );
        }
    }
}

/// Extracts the final cover as a netlist with statistics.
fn extract(ctx: &Ctx<'_>, cands: &[Vec<Cand>], sel: &Sel) -> Mapping {
    let aig = ctx.aig;
    let library = ctx.library;
    let n = aig.num_nodes();
    // Resolve aliases: alias_of[node] = (base source, compl).
    // A node implemented as ALIAS forwards to its single pin.
    let mut resolved: Vec<Option<(Source, bool)>> = vec![None; n];
    let pi_index: std::collections::HashMap<NodeId, usize> =
        aig.pis().iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let resolve = |node: NodeId,
                   resolved: &mut Vec<Option<(Source, bool)>>,
                   needed: &mut Vec<bool>| {
        // Iterative resolution following alias chains.
        let mut stack = vec![node];
        while let Some(cur) = stack.pop() {
            if resolved[cur.index()].is_some() {
                continue;
            }
            if aig.is_pi(cur) {
                resolved[cur.index()] = Some((Source::Pi(pi_index[&cur]), false));
                continue;
            }
            let c = &cands[cur.index()][sel.choice[cur.index()]];
            if c.cell == ALIAS {
                let (leaf, compl) = c.pins[0];
                match resolved[leaf.index()] {
                    Some((src, lc)) => {
                        resolved[cur.index()] = Some((src, lc ^ compl));
                    }
                    None => {
                        stack.push(cur);
                        stack.push(leaf);
                    }
                }
            } else {
                resolved[cur.index()] = Some((Source::Node(cur), false));
                needed[cur.index()] = true;
                for &(leaf, _) in &c.pins {
                    stack.push(leaf);
                }
            }
        }
    };

    let mut needed = vec![false; n];
    for po in aig.pos() {
        let node = po.node();
        if node != NodeId::CONST {
            resolve(node, &mut resolved, &mut needed);
        }
    }

    // Emit gates in topological order; rewrite pins through aliases.
    let mut gates = Vec::new();
    let mut area = 0.0f64;
    // Track, per physical driver, whether an inverter is consumed
    // (CMOS only): key = Source, value = inverter needed.
    let mut inv_needed: std::collections::HashSet<SourceKey> = std::collections::HashSet::new();
    // Levels per source (physical).
    let mut level: Vec<u32> = vec![0; n];
    let pi_level = vec![0u32; aig.num_pis()];

    for id in aig.and_ids() {
        if !needed[id.index()] {
            continue;
        }
        let c = &cands[id.index()][sel.choice[id.index()]];
        let cell = &library.cells()[c.cell];
        let mut pins = Vec::with_capacity(c.pins.len());
        let mut lvl = 0u32;
        for &(leaf, compl) in &c.pins {
            let (src, lc) = resolved[leaf.index()].expect("leaf resolved");
            let pin_compl = compl ^ lc;
            // Physical phase of the source:
            let src_phase = match src {
                Source::Pi(_) => false,
                Source::Node(base) => sel.phase[base.index()],
            };
            let needs_inv = !ctx.free_pol && (src_phase ^ pin_compl);
            if needs_inv {
                inv_needed.insert(SourceKey::from(src));
            }
            let src_level = match src {
                Source::Pi(i) => pi_level[i],
                Source::Node(base) => level[base.index()],
            };
            lvl = lvl.max(src_level + u32::from(needs_inv));
            pins.push((src, pin_compl));
        }
        level[id.index()] = lvl + 1;
        area += cell.area;
        gates.push(MappedGate { root: id, cell: c.cell, pins, out_compl: c.out_compl });
    }

    // Primary outputs.
    let mut pos = Vec::with_capacity(aig.num_pos());
    let mut delay_norm = 0.0f64;
    let mut levels = 0u32;
    for po in aig.pos() {
        let node = po.node();
        if node == NodeId::CONST {
            pos.push(PoBinding::Const(po.is_complement()));
            continue;
        }
        let (src, lc) = resolved[node.index()].expect("PO cone resolved");
        let compl = po.is_complement() ^ lc;
        let src_phase = match src {
            Source::Pi(_) => false,
            Source::Node(base) => sel.phase[base.index()],
        };
        let needs_inv = !ctx.free_pol && (src_phase ^ compl);
        if needs_inv {
            inv_needed.insert(SourceKey::from(src));
        }
        let (src_arr, src_level) = match src {
            Source::Pi(i) => (0.0, pi_level[i]),
            Source::Node(base) => (sel.arr[base.index()], level[base.index()]),
        };
        delay_norm = delay_norm.max(src_arr + if needs_inv { ctx.inv_delay } else { 0.0 });
        levels = levels.max(src_level + u32::from(needs_inv));
        pos.push(PoBinding::Signal(src, compl));
    }

    let inverters = inv_needed.len();
    area += inverters as f64 * ctx.inv_area;
    let stats = MapStats {
        gates: gates.len() + if ctx.free_pol { 0 } else { inverters },
        inverters: if ctx.free_pol { 0 } else { inverters },
        area,
        levels,
        delay_norm,
        delay_ps: delay_norm * library.tau_ps(),
    };
    Mapping { gates, pos, stats }
}

/// Hashable key for [`Source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SourceKey {
    Pi(usize),
    Node(u32),
}

impl From<Source> for SourceKey {
    fn from(s: Source) -> SourceKey {
        match s {
            Source::Pi(i) => SourceKey::Pi(i),
            Source::Node(n) => SourceKey::Node(n.index() as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_aig::Lit;
    use cntfet_core::LogicFamily;

    fn full_adder_chain(bits: usize) -> Aig {
        let mut g = Aig::new("adder");
        let a = g.add_pis(bits);
        let b = g.add_pis(bits);
        let mut carry = Lit::FALSE;
        for i in 0..bits {
            let x = g.xor(a[i], b[i]);
            let s = g.xor(x, carry);
            g.add_po(s);
            let c1 = g.and(a[i], b[i]);
            let c2 = g.and(x, carry);
            carry = g.or(c1, c2);
        }
        g.add_po(carry);
        g
    }

    #[test]
    fn objectives_trade_area_for_delay() {
        let src = full_adder_chain(12);
        let lib = Library::new(LogicFamily::TgStatic);
        let by = |objective| {
            map(&src, &lib, MapOptions { objective, ..Default::default() }).stats
        };
        let area = by(Objective::Area);
        let delay = by(Objective::Delay);
        let balanced = by(Objective::Balanced);
        // The area corner can never beat the delay corner on delay,
        // nor the delay corner beat the area corner on area.
        assert!(area.area <= delay.area + EPS);
        assert!(delay.delay_norm <= area.delay_norm + EPS);
        // Balanced sits inside the box the two corners span.
        assert!(balanced.area + EPS >= area.area);
        assert!(balanced.delay_norm + EPS >= delay.delay_norm);
    }

    #[test]
    fn area_recovery_preserves_delay_pass_critical_path() {
        // Under Objective::Delay, recovery must never worsen the
        // critical path the delay pass established.
        for family in [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            for bits in [4, 8, 12] {
                let src = full_adder_chain(bits);
                let opts = |area_rounds| MapOptions {
                    area_rounds,
                    objective: Objective::Delay,
                    ..Default::default()
                };
                let pure = map(&src, &lib, opts(0));
                for rounds in [1, 2, 4] {
                    let rec = map(&src, &lib, opts(rounds));
                    assert!(
                        rec.stats.delay_norm <= pure.stats.delay_norm + EPS,
                        "{family:?}/{bits} bits: {} rounds worsened delay {} -> {}",
                        rounds,
                        pure.stats.delay_norm,
                        rec.stats.delay_norm
                    );
                }
            }
        }
    }

    #[test]
    fn delay_rounds_zero_reproduces_single_enumeration_engine() {
        // Golden stats captured from the PR 2 engine (single
        // Size-ranked enumeration, no arrival rounds) on
        // full_adder_chain(10): `delay_rounds: 0` must reproduce them
        // bit-for-bit for every family × objective.
        let golden: &[(LogicFamily, Objective, usize, f64, f64)] = &[
            (LogicFamily::TgStatic, Objective::Area, 38, 285.6667, 112.5),
            (LogicFamily::TgStatic, Objective::Delay, 38, 285.6667, 112.5),
            (LogicFamily::TgStatic, Objective::Balanced, 38, 285.6667, 112.5),
            (LogicFamily::TgPseudo, Objective::Area, 38, 196.4444, 163.3333),
            (LogicFamily::TgPseudo, Objective::Delay, 39, 209.5556, 147.7778),
            (LogicFamily::TgPseudo, Objective::Balanced, 39, 209.5556, 147.7778),
            (LogicFamily::CmosStatic, Objective::Area, 123, 796.0, 156.6667),
            (LogicFamily::CmosStatic, Objective::Delay, 127, 972.0, 119.0),
            (LogicFamily::CmosStatic, Objective::Balanced, 127, 972.0, 119.0),
        ];
        let src = full_adder_chain(10);
        for &(family, objective, gates, area, delay) in golden {
            let lib = Library::new(family);
            let m = map(
                &src,
                &lib,
                MapOptions { objective, delay_rounds: 0, ..Default::default() },
            );
            assert_eq!(m.stats.gates, gates, "{family:?}/{objective:?} gates");
            assert!((m.stats.area - area).abs() < 1e-3, "{family:?}/{objective:?} area {}", m.stats.area);
            assert!(
                (m.stats.delay_norm - delay).abs() < 1e-3,
                "{family:?}/{objective:?} delay {}",
                m.stats.delay_norm
            );
        }
    }

    #[test]
    fn arrival_rounds_never_worsen_the_critical_path() {
        // The arrival-aware rounds are guarded: whatever they do, the
        // delay objective's critical path can only improve on the
        // single-enumeration result.
        for family in [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            for bits in [6, 12] {
                let src = full_adder_chain(bits);
                let opts = |delay_rounds| MapOptions {
                    delay_rounds,
                    objective: Objective::Delay,
                    ..Default::default()
                };
                let single = map(&src, &lib, opts(0));
                for rounds in [1, 3] {
                    let iter = map(&src, &lib, opts(rounds));
                    assert!(
                        iter.stats.delay_norm <= single.stats.delay_norm + EPS,
                        "{family:?}/{bits}: {rounds} rounds worsened delay {} -> {}",
                        single.stats.delay_norm,
                        iter.stats.delay_norm
                    );
                }
            }
        }
    }

    #[test]
    fn arrival_rounds_never_worsen_the_area_objective() {
        // With area as the sole objective (rounds reached via
        // CutRank::Arrival) the acceptance guard flips to area-first:
        // iterating can never return a larger cover than round 0.
        for family in [LogicFamily::TgStatic, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            let src = full_adder_chain(10);
            let opts = |delay_rounds| MapOptions {
                objective: Objective::Area,
                cut_rank: CutRank::Arrival,
                delay_rounds,
                ..Default::default()
            };
            let single = map(&src, &lib, opts(0));
            let iter = map(&src, &lib, opts(2));
            assert!(
                iter.stats.area <= single.stats.area + EPS,
                "{family:?}: arrival rounds worsened area {} -> {}",
                single.stats.area,
                iter.stats.area
            );
        }
    }

    #[test]
    fn cut_rank_is_user_selectable() {
        // Depth and Arrival ranking are selectable through MapOptions
        // and always yield an equivalent netlist.
        let src = full_adder_chain(8);
        for family in [LogicFamily::TgStatic, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            for cut_rank in [CutRank::Size, CutRank::Depth, CutRank::Arrival] {
                for objective in [Objective::Area, Objective::Delay, Objective::Balanced] {
                    let m = map(
                        &src,
                        &lib,
                        MapOptions { cut_rank, objective, ..Default::default() },
                    );
                    assert_eq!(
                        crate::verify::verify_mapping(&src, &m, &lib),
                        cntfet_aig::CecResult::Equivalent,
                        "{family:?}/{cut_rank:?}/{objective:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_area_refs_balance_out() {
        // After a full map() the internal ref trial machinery must
        // leave counts consistent — indirectly verified by mapping
        // twice and getting identical stats (determinism).
        let src = full_adder_chain(8);
        let lib = Library::new(LogicFamily::TgStatic);
        let a = map(&src, &lib, MapOptions::default());
        let b = map(&src, &lib, MapOptions::default());
        assert_eq!(a.stats.gates, b.stats.gates);
        assert_eq!(a.stats.area, b.stats.area);
        assert_eq!(a.stats.delay_norm, b.stats.delay_norm);
    }

    #[test]
    fn parallel_mapping_matches_sequential_cover() {
        // The whole parallel story hangs on this: sharded enumeration
        // (both the initial Size-ranked pass and the arrival-ranked
        // delay rounds with per-worker matchers) must select the exact
        // cover the sequential engine does — gate for gate, not just
        // stat for stat.
        let src = full_adder_chain(10);
        for family in [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic] {
            let lib = Library::new(family);
            for objective in [Objective::Area, Objective::Delay, Objective::Balanced] {
                let opts = MapOptions { objective, jobs: 1, ..MapOptions::default() };
                let seq = map(&src, &lib, opts);
                for jobs in [2, 4] {
                    let par = map(&src, &lib, MapOptions { jobs, ..opts });
                    assert_eq!(
                        format!("{:?} {:?}", seq.gates, seq.pos),
                        format!("{:?} {:?}", par.gates, par.pos),
                        "{family:?}/{objective:?} cover diverged at jobs={jobs}"
                    );
                    assert_eq!(
                        format!("{:?}", seq.stats),
                        format!("{:?}", par.stats),
                        "{family:?}/{objective:?} stats diverged at jobs={jobs}"
                    );
                }
            }
        }
    }
}
