//! Dynamic-energy estimation for mapped netlists.
//!
//! The paper stops at "energy per cycle gains over CMOS are expected
//! to be consistent with the 2.5× reduction reported in literature
//! \[1\]" without measuring. This module measures the *capacitive*
//! component on our mapped netlists: switched capacitance per cycle
//!
//! ```text
//! E ∝ Σ_signals  α(s) · C(s)        (normalized V² = 1)
//! ```
//!
//! where the switching activity `α(s) = 2·p·(1−p)` comes from random
//! simulation of the source network (`p` = signal probability) and
//! `C(s)` sums the driver's output parasitic and all consumer pin
//! capacitances. Technology-level energy differences (supply, device
//! charge) are outside this model — the reported ratio isolates the
//! *library/architecture* contribution.

use crate::mapper::{Mapping, PoBinding, Source};
use cntfet_aig::Aig;
use cntfet_core::Library;
use std::collections::BTreeMap;

/// Energy estimate for one mapping.
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Σ activity·capacitance over all signals (normalized units).
    pub switched_cap_per_cycle: f64,
    /// Total capacitance if every signal toggled every cycle
    /// (upper bound; also the Σ C of the design).
    pub total_cap: f64,
    /// Mean switching activity across mapped signals.
    pub mean_activity: f64,
}

/// Estimates dynamic energy of a mapping by simulating the source
/// network with `rounds × 64` random patterns.
///
/// # Panics
///
/// Panics if the mapping does not belong to `source` (gate roots must
/// be source nodes).
pub fn estimate_energy(
    source: &Aig,
    mapping: &Mapping,
    library: &Library,
    rounds: usize,
) -> EnergyReport {
    // Signal probabilities on the source AIG.
    let mut ones = vec![0u64; source.num_nodes()];
    let mut state = 0x00C0_FFEE_1234_5678u64;
    let mut total_bits = 0u64;
    for _ in 0..rounds.max(1) {
        let inputs: Vec<u64> = (0..source.num_pis())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        let vals = source.simulate_words(&inputs);
        for (i, v) in vals.iter().enumerate() {
            ones[i] += v.count_ones() as u64;
        }
        total_bits += 64;
    }
    let activity = |node: usize| -> f64 {
        let p = ones[node] as f64 / total_bits as f64;
        2.0 * p * (1.0 - p)
    };
    let src_activity = |s: &Source, pis: &Aig| -> f64 {
        match s {
            Source::Pi(i) => activity(pis.pis()[*i].index()),
            Source::Node(n) => activity(n.index()),
        }
    };

    // Capacitance per signal: driver output parasitic + consumer pins.
    // Key: gate root (or PI index offset) → accumulated cap.
    let mut cap: BTreeMap<i64, f64> = BTreeMap::new();
    let key = |s: &Source| -> i64 {
        match s {
            Source::Pi(i) => -(*i as i64) - 1,
            Source::Node(n) => n.index() as i64,
        }
    };
    for gate in &mapping.gates {
        let cell = &library.cells()[gate.cell];
        *cap.entry(gate.root.index() as i64).or_insert(0.0) += cell.output_cap;
        for (pin, (src, _)) in gate.pins.iter().enumerate() {
            *cap.entry(key(src)).or_insert(0.0) += cell.pin_cap[pin];
        }
    }
    // Explicit CMOS inverters: input + output caps on their driver.
    if !library.free_polarity() {
        // Inverter: input gate widths + matching output drains.
        let inv_cap = 2.0 * library.family().inverter_input_cap();
        let mut seen = std::collections::HashSet::new();
        for gate in &mapping.gates {
            for (src, compl) in &gate.pins {
                if *compl && seen.insert(key(src)) {
                    *cap.entry(key(src)).or_insert(0.0) += inv_cap;
                }
            }
        }
        for po in &mapping.pos {
            if let PoBinding::Signal(src, true) = po {
                if seen.insert(key(src)) {
                    *cap.entry(key(src)).or_insert(0.0) += inv_cap;
                }
            }
        }
    }

    let mut switched = 0.0;
    let mut total = 0.0;
    let mut act_sum = 0.0;
    let mut signals = 0usize;
    for (&k, &c) in &cap {
        let a = if k < 0 {
            src_activity(&Source::Pi((-k - 1) as usize), source)
        } else {
            activity(k as usize)
        };
        switched += a * c;
        total += c;
        act_sum += a;
        signals += 1;
    }
    EnergyReport {
        switched_cap_per_cycle: switched,
        total_cap: total,
        mean_activity: if signals > 0 { act_sum / signals as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use cntfet_core::LogicFamily;

    fn adder(bits: usize) -> Aig {
        let mut g = Aig::new("a");
        let a = g.add_pis(bits);
        let b = g.add_pis(bits);
        let mut carry = cntfet_aig::Lit::FALSE;
        for i in 0..bits {
            let x = g.xor(a[i], b[i]);
            let s = g.xor(x, carry);
            g.add_po(s);
            let c1 = g.and(a[i], b[i]);
            let c2 = g.and(x, carry);
            carry = g.or(c1, c2);
        }
        g.add_po(carry);
        g
    }

    #[test]
    fn cntfet_switches_less_capacitance_on_adders() {
        let src = adder(16);
        let tg = Library::new(LogicFamily::TgStatic);
        let cmos = Library::new(LogicFamily::CmosStatic);
        let mt = map(&src, &tg, MapOptions::default());
        let mc = map(&src, &cmos, MapOptions::default());
        let et = estimate_energy(&src, &mt, &tg, 16);
        let ec = estimate_energy(&src, &mc, &cmos, 16);
        assert!(et.switched_cap_per_cycle > 0.0);
        let ratio = ec.switched_cap_per_cycle / et.switched_cap_per_cycle;
        // The paper expects ~2.5× energy gains; the capacitive
        // component alone should already exceed 1.5× on XOR-rich logic.
        assert!(ratio > 1.5, "energy ratio {ratio:.2}");
        assert!(et.mean_activity > 0.0 && et.mean_activity <= 0.5 + 1e-9);
        assert!(et.total_cap >= et.switched_cap_per_cycle);
    }

    #[test]
    fn deterministic_given_rounds() {
        let src = adder(8);
        let tg = Library::new(LogicFamily::TgStatic);
        let m = map(&src, &tg, MapOptions::default());
        let a = estimate_energy(&src, &m, &tg, 8);
        let b = estimate_energy(&src, &m, &tg, 8);
        assert_eq!(a.switched_cap_per_cycle, b.switched_cap_per_cycle);
    }
}
