//! # ambipolar-cntfet
//!
//! A full reproduction of *"Novel Library of Logic Gates with
//! Ambipolar CNTFETs: Opportunities for Multi-Level Logic Synthesis"*
//! (Ben Jamaa, Mohanram, De Micheli — DATE 2009), as a Rust workspace:
//! the 46-gate ambipolar logic family, its switch-level and timing
//! characterization, an ABC-style synthesis and technology-mapping
//! flow, the benchmark suite of the paper's evaluation, and the
//! regular-fabric architecture of its outlook section.
//!
//! This umbrella crate re-exports the workspace's public API under
//! stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`boolfn`] | `cntfet-boolfn` | truth tables, NPN canonicalization, ISOP, factoring |
//! | [`switchlevel`] | `cntfet-switchlevel` | ambipolar transistor netlists + discrete solver |
//! | [`core`] | `cntfet-core` | the 46 gates, 4 families, sizing + FO4 characterization |
//! | [`sat`] | `cntfet-sat` | CDCL SAT solver |
//! | [`aig`] | `cntfet-aig` | And-Inverter Graphs, simulation, CEC |
//! | [`synth`] | `cntfet-synth` | in-place DAG-aware pass engine (`Pass`/`Script`), `resyn2rs` |
//! | [`techmap`] | `cntfet-techmap` | cut-based NPN boolean matching + covering |
//! | [`circuits`] | `cntfet-circuits` | Table 3 benchmark generators |
//! | [`fabric`] | `cntfet-fabric` | GNOR/GNAND regular fabrics |
//!
//! # Quickstart
//!
//! ```
//! use ambipolar_cntfet::prelude::*;
//!
//! // 1. A benchmark circuit (16-bit ripple adder = paper's add-16).
//! let adder = ripple_adder(16);
//!
//! // 2. Optimize it (resyn2rs-style script).
//! let optimized = resyn2rs(&adder);
//!
//! // 3. Map onto the static ambipolar CNTFET library and onto CMOS.
//! let cntfet = Library::new(LogicFamily::TgStatic);
//! let cmos = Library::new(LogicFamily::CmosStatic);
//! let m1 = map(&optimized, &cntfet, MapOptions::default());
//! let m2 = map(&optimized, &cmos, MapOptions::default());
//!
//! // 4. Both mappings are formally equivalent to the source …
//! assert_eq!(verify_mapping(&optimized, &m1, &cntfet), CecResult::Equivalent);
//! assert_eq!(verify_mapping(&optimized, &m2, &cmos), CecResult::Equivalent);
//!
//! // … and the XOR-rich adder maps into far fewer CNTFET gates
//! // (the paper's headline effect).
//! assert!(m1.stats.gates * 3 < m2.stats.gates * 2);
//!
//! // 5. The same engine also covers the area- and delay-pressed
//! // corners (Table 3's trade-off axis).
//! let small = map(&optimized, &cntfet, MapOptions { objective: Objective::Area, ..Default::default() });
//! assert_eq!(verify_mapping(&optimized, &small, &cntfet), CecResult::Equivalent);
//! assert!(small.stats.area <= m1.stats.area);
//!
//! // 6. The delay corner iterates arrival-aware cut re-enumeration
//! // (`delay_rounds`); the iterated cover is never slower than the
//! // single-enumeration engine (`delay_rounds: 0`).
//! let fast = map(&optimized, &cntfet, MapOptions { objective: Objective::Delay, ..Default::default() });
//! let single = map(&optimized, &cntfet, MapOptions {
//!     objective: Objective::Delay,
//!     delay_rounds: 0,
//!     ..Default::default()
//! });
//! assert_eq!(verify_mapping(&optimized, &fast, &cntfet), CecResult::Equivalent);
//! assert!(fast.stats.delay_norm <= single.stats.delay_norm + 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cntfet_aig as aig;
pub use cntfet_boolfn as boolfn;
pub use cntfet_circuits as circuits;
pub use cntfet_core as core;
pub use cntfet_fabric as fabric;
pub use cntfet_sat as sat;
pub use cntfet_switchlevel as switchlevel;
pub use cntfet_synth as synth;
pub use cntfet_techmap as techmap;

/// Most-used items in one import.
pub mod prelude {
    pub use cntfet_aig::{
        check_equivalence, check_equivalence_sweeping, equivalent, Aig, CecReport, CecResult,
        SweepOptions,
    };
    pub use cntfet_boolfn::{factor, isop, npn_canonical, Expr, TruthTable};
    pub use cntfet_circuits::{
        array_multiplier, paper_benchmarks, parity, ripple_adder, BenchClass, Benchmark,
    };
    pub use cntfet_core::{
        characterize, characterize_family, enumerate_gates, gate_netlist, DynamicGnor, GateChar,
        GateId, Library, LogicFamily,
    };
    pub use cntfet_fabric::{fabric_library, place_mapping, FabricConfig};
    pub use cntfet_sat::{SolveResult, Solver};
    pub use cntfet_switchlevel::{solve, DynamicSim, Netlist, NodeState, Rank};
    pub use cntfet_synth::{
        balance, quick_opt, refactor, resyn2rs, resyn2rs_with, rewrite, AigStats, Pass, Script,
        SynthEngine, SynthOptions,
    };
    pub use cntfet_techmap::{map, verify_mapping, CutRank, MapOptions, MapStats, Mapping, Objective};
}
