//! Workspace property tests for the incrementality substrate:
//! random edit sequences driven through [`cntfet_aig::CutArena::update`]
//! must land on exactly the from-scratch cut lists (sequentially and
//! sharded), an arena must survive compaction via
//! [`cntfet_aig::CutArena::rebase`] and keep absorbing deltas on the
//! compacted graph, and the NPN canonicalization memo must agree with
//! the direct canonicalizer on every query.

use cntfet_aig::{enumerate_cuts_with, Aig, CutArena, CutParams, CutRank, Lit, NodeId};
use cntfet_boolfn::{npn_canonical, npn_canonical_cached, CanonCache, TruthTable};
use proptest::prelude::*;

/// Builds a random DAG from a script of (op, operand indices) choices
/// (same shape as tests/properties.rs).
fn random_aig(num_pis: usize, script: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new("prop-incr");
    let pis = g.add_pis(num_pis);
    let mut pool: Vec<Lit> = pis;
    for &(op, ai, bi) in script {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let l = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.and(a.negate(), b),
            4 => g.or(a, b.negate()),
            _ => {
                let s = pool[(ai as usize + bi as usize) % pool.len()];
                g.mux(s, a, b)
            }
        };
        pool.push(l);
    }
    for i in 0..4.min(pool.len()) {
        g.add_po(pool[pool.len() - 1 - i]);
    }
    g
}

/// Applies one scripted in-place edit inside an active editing
/// session. Returns `true` when the edit actually fired (targets may
/// have died in an earlier cascade, or a guard may not fit).
fn apply_edit(g: &mut Aig, op: u8, ti: u16) -> bool {
    let ands: Vec<NodeId> = g.and_ids().collect();
    if ands.is_empty() {
        return false;
    }
    let id = ands[ti as usize % ands.len()];
    if !g.is_and(id) {
        return false;
    }
    let (f0, f1) = g.fanins(id);
    match op % 3 {
        0 => {
            // Re-association: (g0·g1)·f1 → g0·(g1·f1). Appends fresh
            // nodes at the tail, so fanout patching leaves the graph
            // non-topological — the hardest path for `update`.
            if f0.is_complement() || !g.is_and(f0.node()) {
                return false;
            }
            let (g0, g1) = g.fanins(f0.node());
            let inner = g.and(g1, f1);
            let outer = g.and(g0, inner);
            if outer == id.lit() {
                return false; // strash handed the node back unchanged
            }
            g.replace_node(id, outer);
            true
        }
        1 => {
            // Merge onto a fanin, as strash-sweeping would after
            // proving the node redundant. Structurally always acyclic.
            g.replace_node(id, f0);
            true
        }
        _ => {
            // Constant propagation: the node was "proved" false.
            g.replace_node(id, Lit::FALSE);
            true
        }
    }
}

/// Per-node cut-list snapshot used to compare arenas for equality.
type CutSnapshot = Vec<Vec<(Vec<NodeId>, Option<u64>, (u32, u32))>>;

fn snapshot(g: &Aig, arena: &CutArena) -> CutSnapshot {
    g.node_ids()
        .map(|id| {
            arena
                .of(id)
                .map(|c| (c.leaves().to_vec(), c.function_word(), c.rank_cost()))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random edit sequences through `CutArena::update` /
    /// `update_jobs` reproduce the from-scratch enumeration exactly,
    /// per node, at every tested worker count.
    #[test]
    fn prop_incremental_cuts_match_scratch(
        script in proptest::collection::vec((0u8..6, 0u16..500, 0u16..500), 20..100),
        edits in proptest::collection::vec((0u8..3, 0u16..500), 1..10),
        depth_rank: bool,
    ) {
        let mut g = random_aig(6, &script);
        let rank = if depth_rank { CutRank::Depth } else { CutRank::Size };
        let params = CutParams { k: 4, max_cuts: 6, rank };
        let pre = enumerate_cuts_with(&g, params);

        g.begin_edit();
        for &(op, ti) in &edits {
            apply_edit(&mut g, op, ti);
        }
        let delta = g.end_edit();

        let scratch = snapshot(&g, &enumerate_cuts_with(&g, params));
        let mut seq = pre.clone();
        seq.update(&g, &delta, params);
        prop_assert_eq!(&snapshot(&g, &seq), &scratch, "sequential update diverges");
        for jobs in [1usize, 4] {
            let mut par = pre.clone();
            par.update_jobs(&g, &delta, params, jobs);
            prop_assert_eq!(&snapshot(&g, &par), &scratch, "update_jobs({}) diverges", jobs);
        }
    }

    /// An arena that rides an edit session, an incremental update, a
    /// compaction ([`Aig::compact_with_map`] + [`CutArena::rebase`])
    /// and a *second* edit round still matches from-scratch
    /// enumeration at every step — the exact lifetime a synthesis
    /// `Script`'s persistent arenas live through across passes.
    #[test]
    fn prop_arena_survives_compaction(
        script in proptest::collection::vec((0u8..6, 0u16..500, 0u16..500), 20..100),
        edits in proptest::collection::vec((0u8..3, 0u16..500), 1..8),
        edits2 in proptest::collection::vec((0u8..3, 0u16..500), 1..8),
    ) {
        let mut g = random_aig(6, &script);
        let params = CutParams { k: 4, max_cuts: 6, rank: CutRank::Size };
        let mut arena = enumerate_cuts_with(&g, params);

        g.begin_edit();
        for &(op, ti) in &edits {
            apply_edit(&mut g, op, ti);
        }
        let delta = g.end_edit();
        arena.update(&g, &delta, params);

        let (compacted, map) = g.compact_with_map();
        arena.rebase(&map, &compacted, params);
        let scratch = snapshot(&compacted, &enumerate_cuts_with(&compacted, params));
        prop_assert_eq!(&snapshot(&compacted, &arena), &scratch, "rebased arena diverges");

        // Second round on the compacted graph: the survivor keeps
        // absorbing deltas exactly like a freshly-enumerated arena.
        let mut g2 = compacted;
        g2.begin_edit();
        for &(op, ti) in &edits2 {
            apply_edit(&mut g2, op, ti);
        }
        let delta2 = g2.end_edit();
        arena.update(&g2, &delta2, params);
        let scratch2 = snapshot(&g2, &enumerate_cuts_with(&g2, params));
        prop_assert_eq!(&snapshot(&g2, &arena), &scratch2, "post-compaction update diverges");
    }

    /// The NPN canonicalization memo — both the process-wide
    /// thread-local instance behind `npn_canonical_cached` and a fresh
    /// local `CanonCache` queried twice (miss, then hit) — agrees with
    /// the direct canonicalizer, table and transform included.
    #[test]
    fn prop_canon_cache_agrees_with_direct(bits: u64, nvars in 0usize..7) {
        let mask = if nvars >= 6 { u64::MAX } else { (1u64 << (1u64 << nvars)) - 1 };
        let tt = TruthTable::from_bits(nvars, bits & mask);
        let direct = npn_canonical(&tt);

        let cached = npn_canonical_cached(&tt);
        prop_assert_eq!(&cached.table, &direct.table);
        prop_assert_eq!(cached.transform.apply(&tt), direct.table.clone());

        let mut local = CanonCache::with_log2_slots(6);
        for pass in 0..2 {
            let c = local.canonical(&tt);
            prop_assert_eq!(&c.table, &direct.table, "local cache pass {}", pass);
            prop_assert_eq!(c.transform.apply(&tt), direct.table.clone());
        }
    }
}
