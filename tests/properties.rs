//! Cross-crate property-based tests (proptest): randomized circuits
//! and functions exercising the invariants the reproduction rests on.

use ambipolar_cntfet::prelude::*;
use cntfet_aig::Aig;
use proptest::prelude::*;

/// Builds a random DAG from a script of (op, operand indices) choices.
fn random_aig(num_pis: usize, script: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new("prop");
    let pis = g.add_pis(num_pis);
    let mut pool: Vec<cntfet_aig::Lit> = pis;
    for &(op, ai, bi) in script {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let l = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.and(a.negate(), b),
            4 => g.or(a, b.negate()),
            _ => {
                let s = pool[(ai as usize + bi as usize) % pool.len()];
                g.mux(s, a, b)
            }
        };
        pool.push(l);
    }
    // A handful of outputs from the tail.
    for i in 0..4.min(pool.len()) {
        g.add_po(pool[pool.len() - 1 - i]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// resyn2rs preserves the function of arbitrary random networks
    /// (certified by SAT CEC).
    #[test]
    fn prop_resyn2rs_preserves_function(
        script in proptest::collection::vec((0u8..6, 0u16..500, 0u16..500), 10..120)
    ) {
        let g = random_aig(6, &script);
        let o = resyn2rs(&g);
        prop_assert!(equivalent(&g, &o));
        prop_assert!(o.num_ands() <= g.num_ands());
    }

    /// Every synthesis pass and script of the in-place DAG-aware
    /// engine preserves equivalence (SAT CEC) across the benchmark
    /// suite's five circuit families (adders, multipliers,
    /// error-correcting XOR logic, selector/ALU-style muxing, and
    /// unstructured random logic).
    #[test]
    fn prop_synth_passes_preserve_equivalence(
        family_idx in 0usize..5,
        size in 2usize..5,
        seed in 0u64..1000,
        pass_idx in 0usize..7,
    ) {
        use cntfet_circuits::{mux_tree, parity, random_logic};
        use cntfet_synth::{quick_opt, refactor, AigStats};
        let g = match family_idx {
            0 => ripple_adder(size + 2),
            1 => array_multiplier(size),
            2 => parity(4 * size),
            3 => mux_tree(size),
            _ => random_logic("prop", 4 + size, 4, seed),
        };
        let o = match pass_idx {
            0 => balance(&g),
            1 => rewrite(&g, false),
            2 => rewrite(&g, true),
            3 => refactor(&g, 8, false),
            4 => refactor(&g, 10, true),
            5 => quick_opt(&g),
            _ => resyn2rs(&g),
        };
        prop_assert!(equivalent(&g, &o), "pass {pass_idx} broke family {family_idx}");
        if pass_idx == 6 {
            // The script's never-worse guard: (ands, depth) vs input.
            let (si, so) = (AigStats::of(&g.compact()), AigStats::of(&o));
            prop_assert!(
                so.ands < si.ands || (so.ands == si.ands && so.depth <= si.depth),
                "resyn2rs made {si:?} worse: {so:?}"
            );
        }
    }

    /// Mapping onto any family is formally equivalent to the source.
    #[test]
    fn prop_mapping_equivalent(
        script in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 10..80),
        family_idx in 0usize..3
    ) {
        let g = random_aig(5, &script);
        let family = [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic][family_idx];
        let lib = Library::new(family);
        let m = map(&g, &lib, MapOptions::default());
        prop_assert_eq!(verify_mapping(&g, &m, &lib), CecResult::Equivalent);
    }

    /// Mapping is formally equivalent to the source under every
    /// covering objective, for all four ambipolar CNTFET libraries and
    /// the CMOS baseline.
    #[test]
    fn prop_mapping_equivalent_all_objectives(
        script in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 10..60),
        family_idx in 0usize..5,
        objective_idx in 0usize..3
    ) {
        let g = random_aig(5, &script);
        let family = [
            LogicFamily::TgStatic,
            LogicFamily::TgPseudo,
            LogicFamily::PassStatic,
            LogicFamily::PassPseudo,
            LogicFamily::CmosStatic,
        ][family_idx];
        let objective =
            [Objective::Area, Objective::Delay, Objective::Balanced][objective_idx];
        let lib = Library::new(family);
        let m = map(&g, &lib, MapOptions { objective, ..Default::default() });
        prop_assert_eq!(verify_mapping(&g, &m, &lib), CecResult::Equivalent);
    }

    /// Under Objective::Delay, area recovery must not worsen the
    /// critical path the delay pass established.
    #[test]
    fn prop_area_recovery_keeps_delay(
        script in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 20..80),
        family_idx in 0usize..3
    ) {
        let g = random_aig(6, &script);
        let family = [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic][family_idx];
        let lib = Library::new(family);
        let opts = |area_rounds| MapOptions {
            area_rounds,
            objective: Objective::Delay,
            ..Default::default()
        };
        let pure = map(&g, &lib, opts(0));
        let rec = map(&g, &lib, opts(3));
        prop_assert!(rec.stats.delay_norm <= pure.stats.delay_norm + 1e-9,
            "recovery worsened delay: {} -> {}", pure.stats.delay_norm, rec.stats.delay_norm);
    }

    /// Arrival-aware delay mapping (the default `delay_rounds`) never
    /// maps to a longer critical path than the single-enumeration
    /// PR 2 engine (`delay_rounds: 0`), and the iterated cover stays
    /// formally equivalent to the source.
    #[test]
    fn prop_arrival_rounds_never_worsen_delay(
        script in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 20..100),
        family_idx in 0usize..3
    ) {
        let g = random_aig(6, &script);
        let family = [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic][family_idx];
        let lib = Library::new(family);
        let opts = |delay_rounds| MapOptions {
            delay_rounds,
            objective: Objective::Delay,
            ..Default::default()
        };
        let single = map(&g, &lib, opts(0));
        let iterated = map(&g, &lib, opts(MapOptions::default().delay_rounds));
        prop_assert!(
            iterated.stats.delay_norm <= single.stats.delay_norm + 1e-9,
            "arrival rounds worsened delay: {} -> {}",
            single.stats.delay_norm, iterated.stats.delay_norm
        );
        prop_assert_eq!(verify_mapping(&g, &iterated, &lib), CecResult::Equivalent);
    }

    /// Every tier of the sweeping CEC stack agrees with the plain
    /// miter check on random networks — including `node_budget: 0`,
    /// which disables internal sweeping and forces the pure
    /// output-miter fallback, and disabled exhaustive simulation.
    #[test]
    fn prop_sweep_tiers_agree_with_plain_cec(
        script_a in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 10..80),
        script_b in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 10..80)
    ) {
        let a = random_aig(6, &script_a);
        let b = random_aig(6, &script_b);
        let plain = check_equivalence(&a, &b);
        let agree = |r: CecResult| match (&plain, r) {
            (CecResult::Equivalent, CecResult::Equivalent) => true,
            (CecResult::Counterexample { .. }, CecResult::Counterexample { inputs, output }) => {
                // Counterexamples may differ; each must be valid.
                a.eval(&inputs)[output] != b.eval(&inputs)[output]
            }
            _ => false,
        };
        prop_assert!(agree(check_equivalence_sweeping(&a, &b)), "default sweep tier disagreed");
        let no_exhaustive = SweepOptions { exhaustive_pis: 0, ..Default::default() };
        prop_assert!(
            agree(cntfet_aig::check_equivalence_sweeping_with(&a, &b, &no_exhaustive)),
            "SAT sweeping tier disagreed"
        );
        let miter_fallback = SweepOptions { exhaustive_pis: 0, node_budget: 0, ..Default::default() };
        prop_assert!(
            agree(cntfet_aig::check_equivalence_sweeping_with(&a, &b, &miter_fallback)),
            "pure-miter fallback disagreed"
        );
    }

    /// The adder generator agrees with machine arithmetic.
    #[test]
    fn prop_adder_matches_u64(a in 0u64..=0xFFFF, b in 0u64..=0xFFFF, cin: bool) {
        let g = ripple_adder(16);
        let (sum, cout) = cntfet_circuits::eval_adder(&g, 16, a, b, cin);
        let want = a + b + cin as u64;
        prop_assert_eq!(sum, want & 0xFFFF);
        prop_assert_eq!(cout, want >> 16 & 1 == 1);
    }

    /// The multiplier generator agrees with machine arithmetic.
    #[test]
    fn prop_multiplier_matches_u64(a in 0u64..=0xFF, b in 0u64..=0xFF) {
        let g = array_multiplier(8);
        prop_assert_eq!(cntfet_circuits::eval_multiplier(&g, 8, a, b), (a as u128) * (b as u128));
    }

    /// NPN canonicalization is invariant across random transforms of
    /// the 46 gate functions.
    #[test]
    fn prop_gate_npn_invariance(
        gate in 0usize..46,
        perm_seed in 0u64..720,
        flips in 0u8..64,
        out_flip: bool
    ) {
        use cntfet_boolfn::NpnTransform;
        let g = GateId::new(gate);
        let tt = g.function().to_tt(6);
        // Derive a permutation of 0..6 from the seed.
        let mut perm: Vec<usize> = (0..6).collect();
        let mut s = perm_seed;
        for i in (1..6).rev() {
            let j = (s % (i as u64 + 1)) as usize;
            perm.swap(i, j);
            s /= i as u64 + 1;
        }
        let t = NpnTransform::new(6, &perm, flips, out_flip);
        let canon_a = npn_canonical(&tt).table;
        let canon_b = npn_canonical(&t.apply(&tt)).table;
        prop_assert_eq!(canon_a, canon_b);
    }

    /// Switch-level simulation of a random static gate agrees with its
    /// Boolean function at every minterm (full swing included).
    #[test]
    fn prop_switch_level_matches_function(gate in 0usize..46) {
        let g = GateId::new(gate);
        let gn = gate_netlist(g, LogicFamily::TgStatic).unwrap();
        let expr = g.function();
        let k = gn.signals.len();
        for m in 0..(1u64 << k) {
            let mut full = 0u64;
            for (i, &s) in gn.signals.iter().enumerate() {
                if m >> i & 1 == 1 {
                    full |= 1 << s;
                }
            }
            let sol = solve(&gn.netlist, &gn.input_vector(m));
            prop_assert_eq!(sol.logic(gn.output), Some(!expr.eval(full)));
            prop_assert!(sol.is_full_swing(gn.output));
        }
    }

    /// ISOP followed by factoring is exact on random 6-variable
    /// functions.
    #[test]
    fn prop_isop_factor_roundtrip(bits in any::<u64>()) {
        let tt = TruthTable::from_words(6, vec![bits]);
        let cover = isop(&tt);
        prop_assert_eq!(cover.to_tt(), tt.clone());
        let e = factor(&cover);
        prop_assert_eq!(e.to_tt(6), tt);
    }
}
