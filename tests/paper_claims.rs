//! The paper's headline claims, asserted as integration tests.
//! Shape-level reproduction: directions and rough magnitudes, not
//! bit-identical numbers (see EXPERIMENTS.md for the full comparison).

use ambipolar_cntfet::prelude::*;
use cntfet_core::family_averages;

/// Sec. 1/3: "46 functions, as compared to only 7 functions with CMOS
/// logic having the same topology."
#[test]
fn claim_46_vs_7_gate_functions() {
    assert_eq!(enumerate_gates(true).num_functions(), 46);
    assert_eq!(enumerate_gates(false).num_functions(), 7);
}

/// Table 2 footer: average area of the static CNTFET library is
/// slightly *smaller* than CMOS despite more transistors per gate, and
/// the pseudo family is ~31% smaller but ~33% slower than static.
#[test]
fn claim_family_characterization_relations() {
    let st = family_averages(&characterize_family(LogicFamily::TgStatic));
    let ps = family_averages(&characterize_family(LogicFamily::TgPseudo));
    let pp = family_averages(&characterize_family(LogicFamily::PassPseudo));
    let cm = family_averages(&characterize_family(LogicFamily::CmosStatic));

    // More transistors per CNTFET gate, comparable or smaller area.
    assert!(st.transistors > cm.transistors);
    assert!(st.area < cm.area * 1.02, "{} vs {}", st.area, cm.area);
    // Pseudo: ~31% smaller area.
    let shrink = 1.0 - ps.area / st.area;
    assert!((shrink - 0.31).abs() < 0.05, "pseudo shrink {shrink:.2}");
    // Pseudo: ~33% slower.
    let slowdown = ps.fo4_avg / st.fo4_avg - 1.0;
    assert!((0.2..0.5).contains(&slowdown), "pseudo slowdown {slowdown:.2}");
    // Pass-transistor pseudo: barely smaller than TG static, much
    // slower — "a bad choice for circuit design" (Sec. 4.3).
    assert!(pp.area < st.area);
    assert!(pp.area > ps.area, "pass pseudo less area-efficient than TG pseudo");
    assert!(pp.fo4_avg > 2.0 * st.fo4_avg, "pass pseudo ≥2.7× slower");
}

/// Sec. 4.1: the XNOR static transmission-gate cell is *faster* than
/// the unit inverter (FO4 below 5τ).
#[test]
fn claim_xnor_beats_inverter() {
    let inv = characterize(GateId::new(0), LogicFamily::TgStatic).unwrap();
    let xor = characterize(GateId::new(1), LogicFamily::TgStatic).unwrap();
    assert_eq!(inv.fo4_avg, 5.0);
    assert!(xor.fo4_avg < inv.fo4_avg, "XOR/XNOR cell faster than inverter");
}

/// Table 3 / Fig. 6 on the adder rows: fewer gates, less area, fewer
/// levels, and a >4× absolute speedup for the static family.
#[test]
fn claim_adders_win_big() {
    for bits in [16usize, 32] {
        let adder = resyn2rs(&ripple_adder(bits));
        let tg = Library::new(LogicFamily::TgStatic);
        let cmos = Library::new(LogicFamily::CmosStatic);
        let mt = map(&adder, &tg, MapOptions::default());
        let mc = map(&adder, &cmos, MapOptions::default());
        assert!(
            (mt.stats.gates as f64) < 0.7 * mc.stats.gates as f64,
            "add-{bits}: {} vs {}",
            mt.stats.gates,
            mc.stats.gates
        );
        assert!(mt.stats.area < 0.7 * mc.stats.area);
        assert!(mt.stats.levels < mc.stats.levels);
        let speedup = mc.stats.delay_ps / mt.stats.delay_ps;
        assert!(speedup > 4.0, "add-{bits} speedup {speedup:.1}");
    }
}

/// Sec. 3/Fig. 2-3: the dynamic GNOR degrades its output when both
/// free variables are 1; the static family is full swing on every
/// gate and every input vector (checked exhaustively in cntfet-core's
/// tests; spot-checked here through the public API).
#[test]
fn claim_full_swing_static_vs_degraded_dynamic() {
    use ambipolar_cntfet::switchlevel::{solve_with_memory, NodeState, Rank};
    let gnor = DynamicGnor::new();
    let pre = solve(&gnor.netlist, &gnor.inputs(false, false, true, false, true));
    let eva = solve_with_memory(
        &gnor.netlist,
        &gnor.inputs(true, false, true, false, true),
        Some(&pre),
    );
    assert_eq!(
        eva.state(gnor.y),
        NodeState::Driven { rank: Rank::WeakLow, ratioed: false },
        "dynamic GNOR output degraded to |VTp|"
    );

    let gn = gate_netlist(GateId::new(8), LogicFamily::TgStatic).unwrap();
    let sol = solve(&gn.netlist, &gn.input_vector(0b1010));
    assert!(sol.is_full_swing(gn.output), "static F08 full swing at the same corner");
}

/// Sec. 4.2: transmission gates beat pass transistors in static logic
/// (unit-on-resistance area 4A/3 vs 2A).
#[test]
fn claim_tg_beats_pass_in_static() {
    use ambipolar_cntfet::core::ElementStyle;
    let tg_area_per_unit_r = 2.0 * (ElementStyle::TGate.unit_resistance());
    let pass_area_per_unit_r = ElementStyle::PassDevice.unit_resistance();
    // TG: two devices of width 2/3 ⇒ area 4/3; pass: one device of
    // width 2 ⇒ area 2.
    assert!((tg_area_per_unit_r - 4.0 / 3.0).abs() < 1e-12);
    assert!((pass_area_per_unit_r - 2.0).abs() < 1e-12);
}

/// The technology-only speedup is 5.1× (τ ratio); the library design
/// adds on top (paper: 6.9× total on average).
#[test]
fn claim_speedup_decomposition() {
    let tau_ratio = LogicFamily::CmosStatic.tau_ps() / LogicFamily::TgStatic.tau_ps();
    assert!((tau_ratio - 5.08).abs() < 0.01);
    // Design contribution on an ECC benchmark: normalized delay must
    // also improve (paper: 26.4% on average for static).
    let c1355 = resyn2rs(&cntfet_circuits::c1355_like());
    let tg = Library::new(LogicFamily::TgStatic);
    let cmos = Library::new(LogicFamily::CmosStatic);
    let mt = map(&c1355, &tg, MapOptions::default());
    let mc = map(&c1355, &cmos, MapOptions::default());
    assert!(
        mt.stats.delay_norm < mc.stats.delay_norm,
        "normalized delay must improve: {} vs {}",
        mt.stats.delay_norm,
        mc.stats.delay_norm
    );
    let total = mc.stats.delay_ps / mt.stats.delay_ps;
    assert!(total > tau_ratio, "total speedup exceeds the technology factor");
}
