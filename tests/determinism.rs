//! Workspace determinism tests: every parallel engine must produce
//! results identical to its sequential counterpart — same mapped
//! covers, same sweep verdicts and solver statistics, same suite
//! reports — for every worker count. Parallelism is allowed to change
//! wall time and nothing else.

use cntfet_aig::{check_equivalence_sweeping_report, equivalent, Aig, CecResult, SweepOptions};
use cntfet_bench::run_suite_with;
use cntfet_core::{Library, LogicFamily};
use cntfet_synth::{resyn2rs, Script};
use cntfet_techmap::{map, verify_mapping_report, MapOptions, Objective};
use proptest::prelude::*;

/// Builds a random DAG from a script of (op, operand indices) choices.
fn random_aig(num_pis: usize, script: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new("det");
    let pis = g.add_pis(num_pis);
    let mut pool: Vec<cntfet_aig::Lit> = pis;
    for &(op, ai, bi) in script {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let l = match op % 5 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.and(a.negate(), b),
            _ => g.or(a, b.negate()),
        };
        pool.push(l);
    }
    for i in 0..4.min(pool.len()) {
        g.add_po(pool[pool.len() - 1 - i]);
    }
    g
}

/// The benchmark suite (a verified subset, to keep the test fast)
/// produces the same report — stats, verdicts, SAT counters — whether
/// the workers run one benchmark at a time or all at once.
#[test]
fn suite_report_identical_across_worker_counts() {
    let run = |jobs: usize| {
        threadpool::Jobs::set(jobs);
        let rows = run_suite_with(true, Some(&["add-16", "C1355"]), MapOptions::default());
        threadpool::Jobs::set(0);
        assert!(rows.iter().all(|r| r.verified), "suite failed verification at jobs={jobs}");
        format!("{rows:?}")
    };
    let sequential = run(1);
    for jobs in [2, 4] {
        assert_eq!(sequential, run(jobs), "suite report diverged at jobs={jobs}");
    }
}

/// A deterministic pseudo-random op script for the larger determinism
/// fixtures (big enough that the partition-parallel passes actually
/// take their parallel path).
fn big_script(len: usize, mut seed: u64) -> Vec<(u8, u16, u16)> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 60) as u8, (seed >> 16) as u16, (seed >> 32) as u16)
        })
        .collect()
}

/// Partition-parallel rewriting/refactoring commits the exact same
/// replacement sequence the sequential sweep does: the synthesized
/// graph is bit-identical (stats + structural fingerprint) at every
/// worker count, and stays equivalent to its source. Drives the
/// `Script` runner directly so no result cache can short-circuit the
/// comparison.
#[test]
fn synth_identical_across_worker_counts() {
    for seed in [0x5EED_0001u64, 0x5EED_0002] {
        let g = random_aig(8, &big_script(400, seed));
        let run = |jobs: usize| {
            threadpool::Jobs::set(jobs);
            let mut o = g.clone();
            let mut script = Script::resyn2rs();
            script.run(&mut o);
            script.run(&mut o); // second round reuses the persistent arenas
            threadpool::Jobs::set(0);
            o
        };
        let seq = run(1);
        assert!(equivalent(&g, &seq), "sequential synthesis broke equivalence");
        for jobs in [2usize, 4] {
            let par = run(jobs);
            assert_eq!(
                (seq.num_ands(), seq.depth()),
                (par.num_ands(), par.depth()),
                "synth stats diverged at jobs={jobs}"
            );
            assert_eq!(
                seq.fingerprint(),
                par.fingerprint(),
                "synth result not bit-identical at jobs={jobs}"
            );
        }
    }
}

/// Parallel covering — rank-parallel forward/area-flow passes plus
/// windowed speculate/validate exact-area recovery — selects the
/// exact cover the sequential engine does, gate for gate, on graphs
/// large enough that every parallel covering path actually fans out
/// (the [`Objective::Area`] cases drive multiple exact-area
/// speculation windows; the CMOS case drives phase tracking).
#[test]
fn cover_identical_across_worker_counts() {
    let cases = [
        (LogicFamily::TgStatic, Objective::Area, 0xC0FE_0001u64),
        (LogicFamily::TgStatic, Objective::Delay, 0xC0FE_0002),
        (LogicFamily::TgPseudo, Objective::Area, 0xC0FE_0003),
        (LogicFamily::CmosStatic, Objective::Balanced, 0xC0FE_0004),
    ];
    for (family, objective, seed) in cases {
        let g = random_aig(8, &big_script(500, seed));
        let lib = Library::new(family);
        let opts = MapOptions { objective, jobs: 1, ..MapOptions::default() };
        let seq = map(&g, &lib, opts);
        assert_eq!(
            verify_mapping_report(&g, &seq, &lib).result,
            CecResult::Equivalent,
            "{family:?}/{objective:?} sequential cover broke equivalence"
        );
        for jobs in [2usize, 4] {
            let par = map(&g, &lib, MapOptions { jobs, ..opts });
            assert_eq!(
                format!("{:?} {:?}", seq.gates, seq.pos),
                format!("{:?} {:?}", par.gates, par.pos),
                "{family:?}/{objective:?} cover diverged at jobs={jobs}"
            );
            assert_eq!(
                format!("{:?}", seq.stats),
                format!("{:?}", par.stats),
                "{family:?}/{objective:?} stats diverged at jobs={jobs}"
            );
        }
    }
}

/// The `resyn2rs`/`quick_opt` result cache keys on the graph
/// fingerprint and options but *not* on the worker count — justified
/// exactly because synthesis is deterministic across worker counts.
/// This asserts that justification directly: cold runs (cache cleared
/// in between) at different worker counts produce identical
/// fingerprints, so a jobs-free key can never serve a wrong result.
#[test]
fn synth_result_cache_jobs_free_key_is_sound() {
    let g = random_aig(7, &big_script(250, 0xCAFE_F00D));
    let run = |jobs: usize| {
        cntfet_synth::clear_synth_cache();
        threadpool::Jobs::set(jobs);
        let o = resyn2rs(&g);
        threadpool::Jobs::set(0);
        o.fingerprint()
    };
    let seq = run(1);
    for jobs in [2usize, 4] {
        assert_eq!(seq, run(jobs), "cached synthesis diverged at jobs={jobs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Technology mapping with sharded cut enumeration selects the
    /// exact cover the sequential engine does on arbitrary random
    /// networks — and that cover is SAT-equivalent to its source.
    #[test]
    fn prop_parallel_mapping_matches_sequential(
        script in proptest::collection::vec((0u8..5, 0u16..300, 0u16..300), 20..90),
        delay in 0u8..2,
    ) {
        let g = random_aig(6, &script);
        let lib = Library::new(LogicFamily::TgStatic);
        let objective = if delay == 1 { Objective::Delay } else { Objective::Balanced };
        let opts = MapOptions { objective, jobs: 1, ..MapOptions::default() };
        let seq = map(&g, &lib, opts);
        let par = map(&g, &lib, MapOptions { jobs: 3, ..opts });
        prop_assert_eq!(
            format!("{:?} {:?} {:?}", seq.gates, seq.pos, seq.stats),
            format!("{:?} {:?} {:?}", par.gates, par.pos, par.stats)
        );
        let report = verify_mapping_report(&g, &par, &lib);
        prop_assert_eq!(report.result, CecResult::Equivalent);
    }

    /// SAT sweeping proves candidate pairs on cloned solvers without
    /// changing a single verdict: result, internal proofs and
    /// refinements are identical at every worker count (exhaustive
    /// simulation disabled so the SAT path itself is what runs), and
    /// the *full* report — solver counters included — is reproducible
    /// run-to-run at each fixed worker count. Raw counters may differ
    /// *between* worker counts: the sequential sweep reuses one
    /// incrementally-learning solver, workers prove on clones.
    #[test]
    fn prop_parallel_sweep_matches_sequential(
        script in proptest::collection::vec((0u8..5, 0u16..300, 0u16..300), 20..80),
    ) {
        let g = random_aig(7, &script);
        let o = resyn2rs(&g);
        let base = SweepOptions { exhaustive_pis: 0, jobs: 1, ..SweepOptions::default() };
        let seq = check_equivalence_sweeping_report(&g, &o, &base);
        prop_assert_eq!(seq.result, CecResult::Equivalent);
        for jobs in [2usize, 5] {
            let opts = SweepOptions { jobs, ..base };
            let par = check_equivalence_sweeping_report(&g, &o, &opts);
            prop_assert_eq!(seq.result, par.result, "verdict diverged at jobs={}", jobs);
            prop_assert_eq!(
                (seq.internal_proofs, seq.refinements, seq.exhaustive),
                (par.internal_proofs, par.refinements, par.exhaustive),
                "sweep outcome diverged at jobs={}", jobs
            );
            let rerun = check_equivalence_sweeping_report(&g, &o, &opts);
            prop_assert_eq!(
                format!("{par:?}"),
                format!("{rerun:?}"),
                "report not reproducible at jobs={}", jobs
            );
        }
    }
}
