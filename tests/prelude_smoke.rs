//! Smoke test for the umbrella crate's public surface: every module in
//! the `src/lib.rs` module table and every `prelude` re-export must
//! resolve. Each item is imported individually, so if a future PR drops
//! or renames a re-export, the failure names exactly the missing item.

// The imports are intentionally "unused": resolving them is the test.
#![allow(unused_imports)]

// The nine module aliases from the lib.rs module table.
use ambipolar_cntfet::aig as _;
use ambipolar_cntfet::boolfn as _;
use ambipolar_cntfet::circuits as _;
use ambipolar_cntfet::core as _;
use ambipolar_cntfet::fabric as _;
use ambipolar_cntfet::sat as _;
use ambipolar_cntfet::switchlevel as _;
use ambipolar_cntfet::synth as _;
use ambipolar_cntfet::techmap as _;

// Every item the prelude promises, one import per line.
use ambipolar_cntfet::prelude::check_equivalence as _;
use ambipolar_cntfet::prelude::equivalent as _;
use ambipolar_cntfet::prelude::Aig as _;
use ambipolar_cntfet::prelude::CecResult as _;

use ambipolar_cntfet::prelude::factor as _;
use ambipolar_cntfet::prelude::isop as _;
use ambipolar_cntfet::prelude::npn_canonical as _;
use ambipolar_cntfet::prelude::Expr as _;
use ambipolar_cntfet::prelude::TruthTable as _;

use ambipolar_cntfet::prelude::array_multiplier as _;
use ambipolar_cntfet::prelude::paper_benchmarks as _;
use ambipolar_cntfet::prelude::parity as _;
use ambipolar_cntfet::prelude::ripple_adder as _;
use ambipolar_cntfet::prelude::BenchClass as _;
use ambipolar_cntfet::prelude::Benchmark as _;

use ambipolar_cntfet::prelude::characterize as _;
use ambipolar_cntfet::prelude::characterize_family as _;
use ambipolar_cntfet::prelude::enumerate_gates as _;
use ambipolar_cntfet::prelude::gate_netlist as _;
use ambipolar_cntfet::prelude::DynamicGnor as _;
use ambipolar_cntfet::prelude::GateChar as _;
use ambipolar_cntfet::prelude::GateId as _;
use ambipolar_cntfet::prelude::Library as _;
use ambipolar_cntfet::prelude::LogicFamily as _;

use ambipolar_cntfet::prelude::fabric_library as _;
use ambipolar_cntfet::prelude::place_mapping as _;
use ambipolar_cntfet::prelude::FabricConfig as _;

use ambipolar_cntfet::prelude::SolveResult as _;
use ambipolar_cntfet::prelude::Solver as _;

use ambipolar_cntfet::prelude::solve as _;
use ambipolar_cntfet::prelude::DynamicSim as _;
use ambipolar_cntfet::prelude::Netlist as _;
use ambipolar_cntfet::prelude::NodeState as _;
use ambipolar_cntfet::prelude::Rank as _;

use ambipolar_cntfet::prelude::balance as _;
use ambipolar_cntfet::prelude::refactor as _;
use ambipolar_cntfet::prelude::resyn2rs as _;
use ambipolar_cntfet::prelude::rewrite as _;

use ambipolar_cntfet::prelude::map as _;
use ambipolar_cntfet::prelude::verify_mapping as _;
use ambipolar_cntfet::prelude::CutRank as _;
use ambipolar_cntfet::prelude::MapOptions as _;
use ambipolar_cntfet::prelude::MapStats as _;
use ambipolar_cntfet::prelude::Mapping as _;

/// The glob import alone must be enough to run the quickstart pipeline
/// end to end, and every name it supplies must be unambiguous (a future
/// same-name export from two member crates fails here).
mod glob_only {
    use ambipolar_cntfet::prelude::*;

    #[test]
    fn prelude_drives_quickstart_pipeline() {
        let adder: Aig = ripple_adder(4);
        let optimized = resyn2rs(&adder);
        let lib = Library::new(LogicFamily::TgStatic);
        let mapping = map(&optimized, &lib, MapOptions::default());
        assert_eq!(
            verify_mapping(&optimized, &mapping, &lib),
            CecResult::Equivalent
        );
        assert!(mapping.stats.gates > 0);
    }
}
