//! Round-trip and differential tests for the AIGER frontend: random
//! DAGs and the full 15-circuit benchmark suite must survive a
//! write → parse round trip in BOTH formats (ASCII `aag` and binary
//! `aig`) with identical structural statistics and CEC-proven
//! equivalence at several worker counts — and the BLIF and AIGER
//! writers must describe the same circuit (differential check).

use ambipolar_cntfet::prelude::*;
use cntfet_aig::{parse_aiger, parse_blif, write_aiger_ascii, write_aiger_binary, write_blif, Aig};
use proptest::prelude::*;

/// Builds a random DAG from a script of (op, operand indices) choices.
fn random_aig(num_pis: usize, script: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new("prop");
    let pis = g.add_pis(num_pis);
    let mut pool: Vec<cntfet_aig::Lit> = pis;
    for &(op, ai, bi) in script {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let l = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.and(a.negate(), b),
            4 => g.or(a, b.negate()),
            _ => {
                let s = pool[(ai as usize + bi as usize) % pool.len()];
                g.mux(s, a, b)
            }
        };
        pool.push(l);
    }
    for i in 0..4.min(pool.len()) {
        g.add_po(pool[pool.len() - 1 - i]);
    }
    g
}

/// Writes `g` in both AIGER formats, re-parses each, and checks the
/// round-trip contract: identical structural statistics (ands, depth,
/// PI/PO counts — and the strash fingerprint, since both writers emit
/// the construction sequence in replayable order) plus CEC-proven
/// equivalence at every requested worker count.
fn assert_roundtrips(g: &Aig, jobs: &[usize]) {
    let encodings = [
        ("ascii", write_aiger_ascii(g).into_bytes()),
        ("binary", write_aiger_binary(g)),
    ];
    for (fmt, bytes) in encodings {
        let back = parse_aiger(&bytes)
            .unwrap_or_else(|e| panic!("{}/{fmt}: own output failed to parse: {e}", g.name()));
        assert_eq!(back.num_pis(), g.num_pis(), "{}/{fmt}: PI count", g.name());
        assert_eq!(back.num_pos(), g.num_pos(), "{}/{fmt}: PO count", g.name());
        assert_eq!(back.num_ands(), g.num_ands(), "{}/{fmt}: AND count", g.name());
        assert_eq!(back.depth(), g.depth(), "{}/{fmt}: depth", g.name());
        assert_eq!(back.fingerprint(), g.fingerprint(), "{}/{fmt}: fingerprint", g.name());
        for &j in jobs {
            threadpool::Jobs::set(j);
            let verdict = check_equivalence_sweeping(g, &back);
            threadpool::Jobs::set(0);
            assert_eq!(
                verdict,
                CecResult::Equivalent,
                "{}/{fmt}: CEC failed at jobs={j}",
                g.name()
            );
        }
    }
}

/// Every circuit of the paper's 15-benchmark suite survives the round
/// trip through both formats, CEC-checked sequentially and with 4
/// workers. This is the same contract `full_repro` re-audits in its
/// scoreboard.
#[test]
fn suite_circuits_roundtrip_both_formats() {
    for b in cntfet_circuits::paper_benchmarks() {
        assert_roundtrips(&b.aig, &[1, 4]);
    }
}

/// The two frontends describe the same circuit: an AIG pushed through
/// BLIF and through AIGER parses back to functionally equivalent
/// graphs with the same interface.
#[test]
fn blif_aiger_differential_on_suite_sample() {
    for b in cntfet_circuits::paper_benchmarks()
        .into_iter()
        .filter(|b| ["add-16", "C1355", "mux-16", "C1908"].contains(&b.name))
    {
        let via_blif = parse_blif(&write_blif(&b.aig)).expect("BLIF round trip parses");
        let via_aiger = parse_aiger(write_aiger_ascii(&b.aig).as_bytes())
            .expect("AIGER round trip parses");
        assert_eq!(via_blif.num_pis(), via_aiger.num_pis());
        assert_eq!(via_blif.num_pos(), via_aiger.num_pos());
        assert_eq!(
            check_equivalence_sweeping(&via_blif, &via_aiger),
            CecResult::Equivalent,
            "{}: BLIF and AIGER disagree",
            b.name
        );
        assert_eq!(
            check_equivalence_sweeping(&b.aig, &via_aiger),
            CecResult::Equivalent,
            "{}: AIGER round trip changed the function",
            b.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary random DAGs — dangling cones, complemented edges,
    /// constant outputs and all — survive the round trip through both
    /// formats with identical stats and CEC equivalence at 1 and 4
    /// workers.
    #[test]
    fn prop_aiger_roundtrip_random_dags(
        script in proptest::collection::vec((0u8..6, 0u16..400, 0u16..400), 10..80),
        num_pis in 2usize..8
    ) {
        let g = random_aig(num_pis, &script);
        assert_roundtrips(&g, &[1, 4]);
    }

    /// Differential: the BLIF path and the AIGER path agree on random
    /// networks (same interface, equivalent function). BLIF drops
    /// dangling cones (`parse_blif` compacts), so only the function is
    /// compared, not the structural statistics.
    #[test]
    fn prop_blif_aiger_differential(
        script in proptest::collection::vec((0u8..6, 0u16..300, 0u16..300), 10..60)
    ) {
        let g = random_aig(5, &script);
        let via_blif = parse_blif(&write_blif(&g)).expect("BLIF round trip parses");
        let via_aiger = parse_aiger(&write_aiger_binary(&g)).expect("AIGER round trip parses");
        prop_assert_eq!(via_blif.num_pis(), via_aiger.num_pis());
        prop_assert_eq!(via_blif.num_pos(), via_aiger.num_pos());
        prop_assert_eq!(check_equivalence_sweeping(&via_blif, &via_aiger), CecResult::Equivalent);
        prop_assert_eq!(check_equivalence_sweeping(&g, &via_blif), CecResult::Equivalent);
    }
}
