//! End-to-end integration tests: circuit generation → optimization →
//! technology mapping → formal verification → fabric placement, across
//! crate boundaries.

use ambipolar_cntfet::prelude::*;

#[test]
fn synth_map_verify_adder_all_families() {
    let adder = ripple_adder(12);
    let optimized = resyn2rs(&adder);
    assert!(equivalent(&adder, &optimized), "optimization must preserve function");
    for family in [LogicFamily::TgStatic, LogicFamily::TgPseudo, LogicFamily::CmosStatic] {
        let lib = Library::new(family);
        let mapping = map(&optimized, &lib, MapOptions::default());
        assert_eq!(
            verify_mapping(&optimized, &mapping, &lib),
            CecResult::Equivalent,
            "{family:?}"
        );
        assert!(mapping.stats.delay_ps > 0.0);
    }
}

#[test]
fn xor_rich_vs_control_benefit_ordering() {
    // The paper's central observation: XOR-rich circuits gain more
    // from the CNTFET library than control-dominated ones.
    let parity9 = parity(9);
    let tg = Library::new(LogicFamily::TgStatic);
    let cmos = Library::new(LogicFamily::CmosStatic);

    let p_tg = map(&resyn2rs(&parity9), &tg, MapOptions::default());
    let p_cm = map(&resyn2rs(&parity9), &cmos, MapOptions::default());
    let parity_gain = p_cm.stats.area / p_tg.stats.area;

    // A pure AND tree has no XORs to exploit.
    let mut andtree = cntfet_aig::Aig::new("andtree");
    let pis = andtree.add_pis(9);
    let out = andtree.and_many(&pis);
    andtree.add_po(out);
    let a_tg = map(&resyn2rs(&andtree), &tg, MapOptions::default());
    let a_cm = map(&resyn2rs(&andtree), &cmos, MapOptions::default());
    let and_gain = a_cm.stats.area / a_tg.stats.area;

    assert!(
        parity_gain > and_gain,
        "parity gain {parity_gain:.2} must exceed AND-tree gain {and_gain:.2}"
    );
}

#[test]
fn multiplier_pipeline_with_sweeping_verification() {
    // An 8×8 multiplier through the full pipeline — the sweeping
    // equivalence checker must handle arithmetic miters.
    let mult = array_multiplier(8);
    let optimized = resyn2rs(&mult);
    let lib = Library::new(LogicFamily::TgStatic);
    let mapping = map(&optimized, &lib, MapOptions::default());
    assert_eq!(verify_mapping(&optimized, &mapping, &lib), CecResult::Equivalent);
    // And the mapping still multiplies.
    let rebuilt = cntfet_techmap::mapping_to_aig(&mapping, &lib, 16);
    for (a, b) in [(13u64, 200u64), (255, 255), (0, 77), (128, 2)] {
        let mut ins = Vec::new();
        for i in 0..8 {
            ins.push(a >> i & 1 == 1);
        }
        for i in 0..8 {
            ins.push(b >> i & 1 == 1);
        }
        let out = rebuilt.eval(&ins);
        let mut prod = 0u64;
        for (i, &bit) in out.iter().enumerate() {
            if bit {
                prod |= 1 << i;
            }
        }
        assert_eq!(prod, a * b, "{a}×{b}");
    }
}

#[test]
fn fabric_round_trip_via_mapping() {
    let circuit = ripple_adder(6);
    let lib = fabric_library();
    let mapping = map(&circuit, &lib, MapOptions::default());
    let placed = place_mapping(&mapping, &lib, circuit.num_pis()).expect("placeable");
    // Random vectors across crates: AIG semantics == fabric semantics.
    let mut seed = 0xFAB0_u64;
    for _ in 0..500 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let ins: Vec<bool> = (0..13).map(|i| seed >> (i + 3) & 1 == 1).collect();
        assert_eq!(placed.config.evaluate(&ins), circuit.eval(&ins));
    }
}

#[test]
fn switch_level_agrees_with_cell_model_on_mapped_gate() {
    // Pick a mapped gate from a real mapping and check its transistor
    // netlist implements the cell function the mapper relied on.
    let adder = ripple_adder(4);
    let lib = Library::new(LogicFamily::TgStatic);
    let mapping = map(&adder, &lib, MapOptions::default());
    let gate = &mapping.gates[mapping.gates.len() / 2];
    let cell = &lib.cells()[gate.cell];
    let gn = gate_netlist(cell.gate, LogicFamily::TgStatic).unwrap();
    let expr = cell.gate.function();
    for m in 0..(1u64 << gn.signals.len()) {
        let mut full = 0u64;
        for (i, &s) in gn.signals.iter().enumerate() {
            if m >> i & 1 == 1 {
                full |= 1 << s;
            }
        }
        let sol = solve(&gn.netlist, &gn.input_vector(m));
        assert_eq!(sol.logic(gn.output), Some(!expr.eval(full)));
        assert!(sol.is_full_swing(gn.output));
    }
}

#[test]
fn paper_suite_smoke() {
    // Construct all 15 benchmarks and sanity-check interfaces; full
    // mapping of the suite lives in the bench harness.
    let suite = paper_benchmarks();
    assert_eq!(suite.len(), 15);
    for b in &suite {
        assert_eq!(b.aig.num_pis(), b.io.0, "{}", b.name);
        assert_eq!(b.aig.num_pos(), b.io.1, "{}", b.name);
    }
}
