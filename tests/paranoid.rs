//! Property-based exercise of the structural invariant checkers:
//! random edit sequences on random graphs, full synthesis scripts,
//! cut enumeration, and SAT solving with forced clause-database
//! reductions — each step followed by the corresponding `check()`.
//!
//! These tests run the checkers *explicitly*, so they validate the
//! invariants on every build; under `--features paranoid` the same
//! checks additionally fire inside the engines' own hot seams.

use cntfet_aig::{enumerate_cuts, Aig, Lit};
use cntfet_sat::{SolveResult, Solver, Var};
use proptest::prelude::*;

/// Builds a random DAG from a script of (op, operand indices) choices.
fn random_aig(num_pis: usize, script: &[(u8, u16, u16)]) -> Aig {
    let mut g = Aig::new("paranoid");
    let pis = g.add_pis(num_pis);
    let mut pool: Vec<Lit> = pis;
    for &(op, ai, bi) in script {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let l = match op % 5 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.and(a.negate(), b),
            _ => g.or(a, b.negate()),
        };
        pool.push(l);
    }
    for i in 0..3.min(pool.len()) {
        g.add_po(pool[pool.len() - 1 - i]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random interleaving of `replace_node`, `mffc_deref`/`mffc_ref`
    /// probes, and resolve calls keeps every graph invariant intact —
    /// checked after each step, inside and outside the edit session.
    #[test]
    fn prop_random_edit_sequences_stay_checked(
        script in proptest::collection::vec((0u8..5, 0u16..500, 0u16..500), 8..60),
        edits in proptest::collection::vec((0u16..500, 0u16..500, any::<bool>()), 1..12),
    ) {
        let mut g = random_aig(5, &script);
        prop_assert!(g.check().is_ok(), "fresh graph: {:?}", g.check());

        g.begin_edit();
        prop_assert!(g.check().is_ok(), "after begin_edit: {:?}", g.check());
        for &(oi, ni, probe) in &edits {
            let ands: Vec<_> = g.and_ids().filter(|&id| !g.is_dead(id)).collect();
            if ands.is_empty() {
                break;
            }
            let old = ands[oi as usize % ands.len()];
            if probe {
                // Non-mutating MFFC probe (deref + symmetric re-ref).
                let size = g.mffc_size(old);
                prop_assert!(size >= 1);
            } else {
                // Replace with the resolved literal of another node or
                // a PI — resolve() guards against dangling targets,
                // replace_node() guards against cycles internally by
                // construction (new is an existing literal).
                let ids: Vec<_> = g.node_ids().filter(|&id| !g.is_dead(id)).collect();
                let new = g.resolve(ids[ni as usize % ids.len()].lit());
                if new.node() == old || g.is_dead(new.node()) {
                    continue;
                }
                // Skip replacements that would create a cycle: `new`
                // must not be in `old`'s fanout cone. Cheap proxy: only
                // replace with strictly smaller ids (topological order
                // holds for never-compacted fresh graphs).
                if new.node().index() >= old.index() {
                    continue;
                }
                g.replace_node(old, new);
            }
            prop_assert!(g.check().is_ok(), "mid-edit: {:?}", g.check());
        }
        g.end_edit();
        prop_assert!(g.check().is_ok(), "after end_edit: {:?}", g.check());

        let compacted = g.compact();
        prop_assert!(compacted.check().is_ok(), "after compact: {:?}", compacted.check());
    }

    /// Cut enumeration over random graphs yields a checked arena, and
    /// the full resyn2rs script leaves a checked graph.
    #[test]
    fn prop_synthesis_and_cuts_stay_checked(
        script in proptest::collection::vec((0u8..5, 0u16..500, 0u16..500), 10..80),
    ) {
        let g = random_aig(6, &script);
        let cuts = enumerate_cuts(&g, 4, 8);
        prop_assert!(cuts.check(&g).is_ok(), "cut arena: {:?}", cuts.check(&g));

        let o = cntfet_synth::resyn2rs(&g);
        prop_assert!(o.check().is_ok(), "after resyn2rs: {:?}", o.check());
        let ocuts = enumerate_cuts(&o, 6, 12);
        prop_assert!(ocuts.check(&o).is_ok(), "cut arena after synth: {:?}", ocuts.check(&o));
    }

    /// Random CNF instances solved with a conflict budget, with the
    /// learnt database forcibly reduced (triggering arena GC) between
    /// rounds, keep the solver's invariants intact.
    #[test]
    fn prop_solver_survives_forced_reductions(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0u8..16, any::<bool>()), 2..5), 20..80),
        rounds in 1usize..4,
    ) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..16).map(|_| s.new_var()).collect();
        for c in &clauses {
            let lits: Vec<Lit2> = c.iter().map(|&(v, pos)| vars[v as usize % 16].lit(pos)).collect();
            s.add_clause(&lits);
        }
        prop_assert!(s.check().is_ok(), "after load: {:?}", s.check());
        for _ in 0..rounds {
            let r = s.solve_limited(&[], 200);
            prop_assert!(s.check().is_ok(), "after solve: {:?}", s.check());
            s.reduce_learnts();
            prop_assert!(s.check().is_ok(), "after reduce: {:?}", s.check());
            if r == Some(SolveResult::Unsat) {
                break;
            }
        }
    }
}

type Lit2 = cntfet_sat::Lit;
